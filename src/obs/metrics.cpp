#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <stdexcept>

#include "obs/json.hpp"

namespace optrt::obs {

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};
std::atomic<MetricsRegistry*> g_global_override{nullptr};

// Per-thread shard pointers, keyed by registry id (ids are never reused,
// so a stale entry for a destroyed registry can never be looked up again).
struct ThreadShardCache {
  std::uint64_t last_id = 0;
  MetricsRegistry::Shard* last = nullptr;
  std::unordered_map<std::uint64_t, MetricsRegistry::Shard*> by_id;
};

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

}  // namespace

// Owner thread is the only writer and the only grower; growth and
// cross-thread reads (snapshot/reset) serialize on the registry mutex.
// std::deque never moves existing elements, so the owner's lock-free
// relaxed stores to established slots stay valid during growth.
struct MetricsRegistry::Shard {
  std::deque<std::atomic<std::uint64_t>> slots;
};

namespace {
ThreadShardCache& thread_cache() {
  thread_local ThreadShardCache cache;
  return cache;
}

MetricsRegistry::Shard* thread_cache_lookup(std::uint64_t id) {
  ThreadShardCache& cache = thread_cache();
  if (cache.last_id == id) return cache.last;
  const auto it = cache.by_id.find(id);
  if (it == cache.by_id.end()) return nullptr;
  cache.last_id = id;
  cache.last = it->second;
  return it->second;
}

void thread_cache_store(std::uint64_t id, MetricsRegistry::Shard* shard) {
  ThreadShardCache& cache = thread_cache();
  cache.by_id[id] = shard;
  cache.last_id = id;
  cache.last = shard;
}
}  // namespace

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

detail::MetricInfo* MetricsRegistry::register_metric(
    std::string_view name, MetricKind kind, std::uint32_t slots,
    std::vector<std::uint64_t> bounds) {
  if (name.empty()) {
    throw std::logic_error("MetricsRegistry: empty metric name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    detail::MetricInfo* info = it->second;
    if (info->kind != kind) {
      throw std::logic_error("MetricsRegistry: metric '" + std::string(name) +
                             "' re-registered with a different kind");
    }
    if (kind == MetricKind::kHistogram && info->bounds != bounds) {
      throw std::logic_error("MetricsRegistry: histogram '" +
                             std::string(name) +
                             "' re-registered with different bounds");
    }
    return info;
  }
  auto info = std::make_unique<detail::MetricInfo>();
  info->name = std::string(name);
  info->kind = kind;
  info->slot = next_slot_;
  info->slots = slots;
  info->bounds = std::move(bounds);
  next_slot_ += slots;
  detail::MetricInfo* raw = info.get();
  metrics_.push_back(std::move(info));
  by_name_.emplace(std::string_view(raw->name), raw);
  return raw;
}

const detail::MetricInfo* MetricsRegistry::find_metric(
    std::string_view name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(this, register_metric(name, MetricKind::kCounter, 1, {}));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  // Slot 0: bit-cast value; slot 1: ever-set flag.
  return Gauge(this, register_metric(name, MetricKind::kGauge, 2, {}));
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<std::uint64_t> bounds) {
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw std::logic_error("MetricsRegistry: histogram bounds for '" +
                           std::string(name) +
                           "' must be strictly increasing");
  }
  // Slot 0: sum of observations; slots 1..B+1: buckets (last = overflow).
  const auto slots = static_cast<std::uint32_t>(bounds.size() + 2);
  return Histogram(this, register_metric(name, MetricKind::kHistogram, slots,
                                         std::move(bounds)));
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() const {
  if (Shard* cached = thread_cache_lookup(id_); cached != nullptr) {
    return *cached;
  }
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(owned));
  }
  thread_cache_store(id_, shard);
  return *shard;
}

std::atomic<std::uint64_t>& MetricsRegistry::slot(Shard& shard,
                                                  std::uint32_t index) const {
  // Only the owner thread reads/extends its shard's size, so the unlocked
  // size check races with nobody; growth itself locks out mergers.
  if (index >= shard.slots.size()) {
    std::lock_guard<std::mutex> lock(mu_);
    while (shard.slots.size() < next_slot_) shard.slots.emplace_back();
  }
  return shard.slots[index];
}

void Counter::inc(std::uint64_t delta) const {
  if (reg_ == nullptr) return;
  auto& shard = reg_->local_shard();
  reg_->slot(shard, info_->slot).fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t v) const {
  if (reg_ == nullptr) return;
  auto& shard = reg_->local_shard();
  reg_->slot(shard, info_->slot)
      .store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  reg_->slot(shard, info_->slot + 1).store(1, std::memory_order_relaxed);
}

void Histogram::observe(std::uint64_t v) const {
  if (reg_ == nullptr) return;
  auto& shard = reg_->local_shard();
  reg_->slot(shard, info_->slot).fetch_add(v, std::memory_order_relaxed);
  const auto& bounds = info_->bounds;
  const auto bucket = static_cast<std::uint32_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  reg_->slot(shard, info_->slot + 1 + bucket)
      .fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::sum_slot_locked(std::uint32_t index) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (index < shard->slots.size()) {
      total += shard->slots[index].load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const detail::MetricInfo* info = find_metric(name);
  if (info == nullptr || info->kind != MetricKind::kCounter) return 0;
  return sum_slot_locked(info->slot);
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const detail::MetricInfo* info = find_metric(name);
  if (info == nullptr || info->kind != MetricKind::kGauge) return 0;
  std::int64_t merged = 0;
  bool any = false;
  for (const auto& shard : shards_) {
    if (info->slot + 1 >= shard->slots.size()) continue;
    if (shard->slots[info->slot + 1].load(std::memory_order_relaxed) == 0) {
      continue;
    }
    const auto v = std::bit_cast<std::int64_t>(
        shard->slots[info->slot].load(std::memory_order_relaxed));
    merged = any ? std::max(merged, v) : v;
    any = true;
  }
  return merged;
}

HistogramSnapshot MetricsRegistry::histogram_value(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  const detail::MetricInfo* info = find_metric(name);
  if (info == nullptr || info->kind != MetricKind::kHistogram) return snap;
  snap.bounds = info->bounds;
  snap.sum = sum_slot_locked(info->slot);
  snap.counts.resize(info->bounds.size() + 1);
  for (std::size_t i = 0; i < snap.counts.size(); ++i) {
    snap.counts[i] = sum_slot_locked(info->slot + 1 + static_cast<std::uint32_t>(i));
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const detail::MetricInfo*> sorted;
  sorted.reserve(metrics_.size());
  for (const auto& info : metrics_) sorted.push_back(info.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const detail::MetricInfo* a, const detail::MetricInfo* b) {
              return a->name < b->name;
            });
  MetricsSnapshot snap;
  for (const detail::MetricInfo* info : sorted) {
    switch (info->kind) {
      case MetricKind::kCounter:
        snap.counters.emplace_back(info->name, sum_slot_locked(info->slot));
        break;
      case MetricKind::kGauge: {
        std::int64_t merged = 0;
        bool any = false;
        for (const auto& shard : shards_) {
          if (info->slot + 1 >= shard->slots.size()) continue;
          if (shard->slots[info->slot + 1].load(std::memory_order_relaxed) ==
              0) {
            continue;
          }
          const auto v = std::bit_cast<std::int64_t>(
              shard->slots[info->slot].load(std::memory_order_relaxed));
          merged = any ? std::max(merged, v) : v;
          any = true;
        }
        snap.gauges.emplace_back(info->name, merged);
        break;
      }
      case MetricKind::kHistogram: {
        HistogramSnapshot h;
        h.bounds = info->bounds;
        h.sum = sum_slot_locked(info->slot);
        h.counts.resize(info->bounds.size() + 1);
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          h.counts[i] =
              sum_slot_locked(info->slot + 1 + static_cast<std::uint32_t>(i));
        }
        snap.histograms.emplace_back(info->name, std::move(h));
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& slot : shard->slots) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry default_registry;
  MetricsRegistry* override = g_global_override.load(std::memory_order_acquire);
  return override != nullptr ? *override : default_registry;
}

ScopedRegistry::ScopedRegistry()
    : registry_(std::make_unique<MetricsRegistry>()),
      previous_(g_global_override.load(std::memory_order_acquire)) {
  g_global_override.store(registry_.get(), std::memory_order_release);
}

ScopedRegistry::~ScopedRegistry() {
  g_global_override.store(previous_, std::memory_order_release);
}

Counter counter(std::string_view name) {
  return MetricsRegistry::global().counter(name);
}

Gauge gauge(std::string_view name) {
  return MetricsRegistry::global().gauge(name);
}

Histogram histogram(std::string_view name, std::vector<std::uint64_t> bounds) {
  return MetricsRegistry::global().histogram(name, std::move(bounds));
}

std::vector<std::uint64_t> hop_buckets() {
  return {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128, 256, 1024, 65536};
}

std::string metrics_json(const MetricsSnapshot& snap, std::int64_t wall_ns) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("optrt.metrics.v1");
  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) w.key(name).value(value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snap.gauges) w.key(name).value(value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const std::uint64_t b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.key("sum").value(h.sum);
    w.key("count").value(h.count());
    w.end_object();
  }
  w.end_object();
  if (wall_ns >= 0) w.key("wall_ns").value(wall_ns);
  w.end_object();
  return w.str();
}

std::string metrics_json(const MetricsRegistry& reg, std::int64_t wall_ns) {
  return metrics_json(reg.snapshot(), wall_ns);
}

std::uint64_t metrics_fingerprint(const MetricsRegistry& reg) {
  const std::string doc = metrics_json(reg, -1);
  std::uint64_t h = kFnvOffset;
  for (const char c : doc) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace optrt::obs
