// Deterministic metrics registry: named counters, gauges, and fixed-bucket
// histograms, thread-safe via per-thread shards.
//
// Each thread that touches a registry gets its own shard of relaxed-atomic
// slots; reads (snapshots) merge the shards under the registry lock. The
// merge is *shard-order independent* — counters and histogram buckets are
// integer sums (commutative), gauges merge by maximum — so any quantity a
// parallel run records is bit-identical for every `--threads` value as
// long as the underlying work is deterministic. That is the determinism
// contract the `obs`-labelled tests enforce at 1/2/8 threads, and it is
// why no wall-clock time ever enters a registry: timing lives in
// obs/trace.hpp, where nondeterminism is expected and quarantined.
//
// Handles (Counter/Gauge/Histogram) are trivially copyable, cheap to pass
// around, and valid for the lifetime of their registry. A default-
// constructed handle is a no-op sink.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace optrt::obs {

class MetricsRegistry;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

namespace detail {
struct MetricInfo {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint32_t slot = 0;   ///< first slot in every shard
  std::uint32_t slots = 1;  ///< contiguous slot count
  std::vector<std::uint64_t> bounds;  ///< histogram upper bounds (inclusive)
};
}  // namespace detail

/// Monotone counter of unsigned integers; merge = sum over shards.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t delta = 1) const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, const detail::MetricInfo* info)
      : reg_(reg), info_(info) {}
  MetricsRegistry* reg_ = nullptr;
  const detail::MetricInfo* info_ = nullptr;
};

/// Last-set signed value per shard; merge = maximum over shards that ever
/// set it (0 when none did). Deterministic for monotone quantities
/// (high-water marks, cache sizes); prefer counters for everything else.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, const detail::MetricInfo* info)
      : reg_(reg), info_(info) {}
  MetricsRegistry* reg_ = nullptr;
  const detail::MetricInfo* info_ = nullptr;
};

/// Fixed-bucket histogram over unsigned values. Bucket i counts
/// observations v with v <= bounds[i] (first match); one overflow bucket
/// catches the rest. Also accumulates the exact sum of observations.
class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t v) const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, const detail::MetricInfo* info)
      : reg_(reg), info_(info) {}
  MetricsRegistry* reg_ = nullptr;
  const detail::MetricInfo* info_ = nullptr;
};

struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (last = overflow)
  std::uint64_t sum = 0;

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    return total;
  }
};

/// Merged, name-sorted view of a registry — deterministic by construction.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class MetricsRegistry {
 public:
  /// Opaque per-thread slot storage (defined in metrics.cpp).
  struct Shard;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a metric and returns its handle. Re-registering
  /// an existing name with a different kind — or a histogram with
  /// different bounds — throws std::logic_error.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<std::uint64_t> bounds);

  /// Merged value of one metric (0 / empty when never registered).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] std::int64_t gauge_value(std::string_view name) const;
  [[nodiscard]] HistogramSnapshot histogram_value(std::string_view name) const;

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every slot in every shard. Registrations (and outstanding
  /// handles) stay valid. Callers must quiesce concurrent writers first.
  void reset();

  /// The process-wide registry all library instrumentation records into —
  /// either the default instance or the innermost live ScopedRegistry.
  static MetricsRegistry& global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  friend class ScopedRegistry;

  detail::MetricInfo* register_metric(std::string_view name, MetricKind kind,
                                      std::uint32_t slots,
                                      std::vector<std::uint64_t> bounds);
  [[nodiscard]] const detail::MetricInfo* find_metric(
      std::string_view name) const;
  Shard& local_shard() const;
  /// Slot `index` of the calling thread's shard, growing the shard under
  /// the registry lock if needed.
  std::atomic<std::uint64_t>& slot(Shard& shard, std::uint32_t index) const;
  [[nodiscard]] std::uint64_t sum_slot_locked(std::uint32_t index) const;

  const std::uint64_t id_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<detail::MetricInfo>> metrics_;
  std::unordered_map<std::string_view, detail::MetricInfo*> by_name_;
  std::uint32_t next_slot_ = 0;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

/// Swaps a fresh registry in as MetricsRegistry::global() for this scope —
/// how tests (and the golden-snapshot CI check) isolate instrumentation
/// from whatever the process recorded before. Install/restore is not
/// synchronized against concurrent global() users; create and destroy it
/// only while no instrumented worker threads are running.
class ScopedRegistry {
 public:
  ScopedRegistry();
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

  [[nodiscard]] MetricsRegistry& registry() noexcept { return *registry_; }

 private:
  std::unique_ptr<MetricsRegistry> registry_;
  MetricsRegistry* previous_;
};

/// Convenience handles on the global registry.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name,
                                  std::vector<std::uint64_t> bounds);

/// Power-of-two-ish buckets for hop/route-length histograms.
[[nodiscard]] std::vector<std::uint64_t> hop_buckets();

/// The registry as a deterministic JSON document:
///   {"schema":"optrt.metrics.v1","counters":{...},"gauges":{...},
///    "histograms":{"name":{"bounds":[...],"counts":[...],"sum":S,"count":N}}
///    [,"wall_ns":W]}
/// Names are sorted, values are exact integers; the only nondeterministic
/// field is the optional trailing wall_ns (omitted when `wall_ns` < 0) —
/// strip it and the document is a determinism fingerprint.
[[nodiscard]] std::string metrics_json(const MetricsSnapshot& snap,
                                       std::int64_t wall_ns = -1);
[[nodiscard]] std::string metrics_json(const MetricsRegistry& reg,
                                       std::int64_t wall_ns = -1);

/// FNV-1a over metrics_json(reg) without wall time: equal across runs and
/// thread counts iff the recorded work was deterministic.
[[nodiscard]] std::uint64_t metrics_fingerprint(const MetricsRegistry& reg);

}  // namespace optrt::obs
