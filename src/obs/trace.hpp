// Timing spans, quarantined from the deterministic metrics registry.
//
// A Trace collects completed spans (name, thread, nesting depth, steady-
// clock start/duration). TraceSpan is the RAII recorder: construct it at
// the top of a scope and the span lands in the current trace when the
// scope exits. When no trace is installed every span is a no-op costing
// one relaxed atomic load — instrumentation can stay in hot paths
// unconditionally.
//
// Serialization is two-faced on purpose:
//   * chrome_json()  — full per-event Chrome trace_event JSON, loadable in
//     chrome://tracing or https://ui.perfetto.dev (wall times, inherently
//     nondeterministic);
//   * summary_json(include_wall_times=false) — per-name span *counts*
//     only, which are deterministic whenever the traced work is, and so
//     may be compared across runs and thread counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace optrt::obs {

class Trace {
 public:
  struct Event {
    std::string name;
    std::uint32_t tid = 0;    ///< per-trace sequential thread id
    std::uint32_t depth = 0;  ///< nesting depth on that thread
    std::uint64_t start_ns = 0;  ///< steady time since trace construction
    std::uint64_t dur_ns = 0;
  };

  struct SummaryRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };

  Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  void record(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint32_t tid, std::uint32_t depth);

  [[nodiscard]] std::size_t event_count() const;
  /// Completed events, sorted by (start_ns, tid) for stable output.
  [[nodiscard]] std::vector<Event> events() const;
  /// Per-name aggregates, name-sorted.
  [[nodiscard]] std::vector<SummaryRow> summary() const;

  /// {"spans":{"name":{"count":N[,"total_ns":T,"max_ns":M]}}} — with wall
  /// times excluded the document is deterministic (counts only).
  [[nodiscard]] std::string summary_json(bool include_wall_times) const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}) with complete ("X")
  /// events; microsecond timestamps relative to trace construction.
  [[nodiscard]] std::string chrome_json() const;

  /// Nanoseconds of steady clock since this trace was constructed.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Sequential id of the calling thread within this trace.
  [[nodiscard]] std::uint32_t thread_id() const;

 private:
  const std::uint64_t id_;
  const std::uint64_t epoch_ns_;  ///< steady_clock at construction
  mutable std::mutex mu_;
  std::vector<Event> events_;
  mutable std::atomic<std::uint32_t> next_tid_{0};
};

/// The trace spans currently record into (nullptr = spans disabled).
[[nodiscard]] Trace* current_trace() noexcept;

/// Installs `t` as the current trace for this scope, restoring the
/// previous trace on destruction. Not synchronized against concurrently
/// running instrumented threads — install before spawning workers.
class TraceScope {
 public:
  explicit TraceScope(Trace& t) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Trace* previous_;
};

/// RAII span. `name` must outlive the span (string literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  TraceSpan(Trace* trace, const char* name) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Trace* trace_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace optrt::obs
