#include "serve/protocol.hpp"

#include "bitio/crc32.hpp"

namespace optrt::serve {

namespace {

void check(bool ok, WireError code, const char* what) {
  if (!ok) throw ProtocolError(code, what);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(std::span<const std::uint8_t> bytes, std::size_t offset) {
  return static_cast<std::uint16_t>(bytes[offset] |
                                    (std::uint16_t{bytes[offset + 1]} << 8));
}

bool known_request_opcode(std::uint8_t op) noexcept {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kPing:
    case Opcode::kNextHop:
    case Opcode::kRoute:
    case Opcode::kList:
    case Opcode::kReload:
      return true;
  }
  return false;
}

bool known_opcode(std::uint8_t op) noexcept {
  if (op == kErrorOpcode) return true;
  return known_request_opcode(op & static_cast<std::uint8_t>(~kResponseBit));
}

Frame make_pair_request(Opcode op, std::uint32_t artifact_id,
                        std::span<const QueryPair> pairs) {
  Frame f;
  f.opcode = static_cast<std::uint8_t>(op);
  f.artifact_id = artifact_id;
  f.pair_count = static_cast<std::uint32_t>(pairs.size());
  f.payload.reserve(pairs.size() * 8);
  for (const QueryPair& p : pairs) {
    put_u32(f.payload, p.src);
    put_u32(f.payload, p.dst);
  }
  return f;
}

}  // namespace

const char* to_string(Opcode op) noexcept {
  switch (op) {
    case Opcode::kPing: return "ping";
    case Opcode::kNextHop: return "next_hop";
    case Opcode::kRoute: return "route";
    case Opcode::kList: return "list";
    case Opcode::kReload: return "reload";
  }
  return "unknown";
}

const char* to_string(WireError code) noexcept {
  switch (code) {
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kVersionMismatch: return "version-mismatch";
    case WireError::kBadOpcode: return "bad-opcode";
    case WireError::kTruncated: return "truncated";
    case WireError::kChecksumMismatch: return "checksum-mismatch";
    case WireError::kResourceLimit: return "resource-limit";
    case WireError::kMalformed: return "malformed";
    case WireError::kUnknownArtifact: return "unknown-artifact";
    case WireError::kBadPair: return "bad-pair";
    case WireError::kInternal: return "internal";
  }
  return "unknown";
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t{bytes[offset + static_cast<std::size_t>(i)]} << (8 * i);
  }
  return v;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kWireHeaderBytes + frame.payload.size());
  put_u32(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(frame.opcode);
  put_u16(out, 0);  // reserved
  put_u32(out, frame.artifact_id);
  put_u32(out, frame.pair_count);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  put_u32(out, frame.payload.empty()
                   ? 0
                   : bitio::crc32(frame.payload.data(), frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

std::size_t parse_header(std::span<const std::uint8_t> bytes, Frame& out) {
  check(bytes.size() >= kWireHeaderBytes, WireError::kTruncated,
        "frame shorter than the 24-byte header");
  check(get_u32(bytes, 0) == kWireMagic, WireError::kBadMagic,
        "leading magic is not ORTP");
  check(bytes[4] == kWireVersion, WireError::kVersionMismatch,
        "unknown protocol version");
  out.opcode = bytes[5];
  check(known_opcode(out.opcode), WireError::kBadOpcode,
        "opcode outside the ORTP menu");
  check(get_u16(bytes, 6) == 0, WireError::kMalformed,
        "reserved header bytes must be zero");
  out.artifact_id = get_u32(bytes, 8);
  out.pair_count = get_u32(bytes, 12);
  const std::uint32_t payload_len = get_u32(bytes, 16);
  // Bound the declared sizes before any caller allocates for them.
  check(payload_len <= kMaxPayloadBytes, WireError::kResourceLimit,
        "declared payload exceeds kMaxPayloadBytes");
  check(out.pair_count <= kMaxPairsPerRequest, WireError::kResourceLimit,
        "declared pair count exceeds kMaxPairsPerRequest");
  return payload_len;
}

Frame parse_frame(std::span<const std::uint8_t> bytes, std::size_t* consumed) {
  Frame frame;
  const std::size_t payload_len = parse_header(bytes, frame);
  check(bytes.size() >= kWireHeaderBytes + payload_len, WireError::kTruncated,
        "buffer ends inside the declared payload");
  const std::uint32_t crc_stored = get_u32(bytes, 20);
  const auto payload = bytes.subspan(kWireHeaderBytes, payload_len);
  const std::uint32_t crc_computed =
      payload.empty() ? 0 : bitio::crc32(payload.data(), payload.size());
  check(crc_computed == crc_stored, WireError::kChecksumMismatch,
        "payload CRC32 disagrees with the header");
  frame.payload.assign(payload.begin(), payload.end());
  if (consumed != nullptr) *consumed = kWireHeaderBytes + payload_len;
  return frame;
}

Frame make_ping_request() {
  Frame f;
  f.opcode = static_cast<std::uint8_t>(Opcode::kPing);
  return f;
}

Frame make_next_hop_request(std::uint32_t artifact_id,
                            std::span<const QueryPair> pairs) {
  return make_pair_request(Opcode::kNextHop, artifact_id, pairs);
}

Frame make_route_request(std::uint32_t artifact_id,
                         std::span<const QueryPair> pairs) {
  return make_pair_request(Opcode::kRoute, artifact_id, pairs);
}

Frame make_list_request() {
  Frame f;
  f.opcode = static_cast<std::uint8_t>(Opcode::kList);
  return f;
}

Frame make_reload_request() {
  Frame f;
  f.opcode = static_cast<std::uint8_t>(Opcode::kReload);
  return f;
}

Frame make_error_response(std::uint32_t artifact_id, WireError code,
                          const std::string& detail) {
  Frame f;
  f.opcode = kErrorOpcode;
  f.artifact_id = artifact_id;
  f.payload.reserve(1 + detail.size());
  f.payload.push_back(static_cast<std::uint8_t>(code));
  for (const char c : detail) {
    f.payload.push_back(static_cast<std::uint8_t>(c));
  }
  return f;
}

std::vector<QueryPair> decode_query_pairs(const Frame& frame) {
  check(frame.payload.size() == std::size_t{frame.pair_count} * 8,
        WireError::kMalformed,
        "query payload must hold exactly pair_count 8-byte pairs");
  std::vector<QueryPair> pairs(frame.pair_count);
  for (std::uint32_t i = 0; i < frame.pair_count; ++i) {
    pairs[i].src = get_u32(frame.payload, std::size_t{i} * 8);
    pairs[i].dst = get_u32(frame.payload, std::size_t{i} * 8 + 4);
  }
  return pairs;
}

std::vector<graph::NodeId> decode_next_hops(const Frame& frame) {
  check(frame.payload.size() == std::size_t{frame.pair_count} * 4,
        WireError::kMalformed,
        "next_hop response must hold exactly pair_count u32 hops");
  std::vector<graph::NodeId> hops(frame.pair_count);
  for (std::uint32_t i = 0; i < frame.pair_count; ++i) {
    hops[i] = get_u32(frame.payload, std::size_t{i} * 4);
  }
  return hops;
}

std::vector<std::vector<graph::NodeId>> decode_routes(const Frame& frame) {
  std::vector<std::vector<graph::NodeId>> routes;
  routes.reserve(frame.pair_count);
  std::size_t pos = 0;
  const auto& p = frame.payload;
  for (std::uint32_t i = 0; i < frame.pair_count; ++i) {
    check(pos + 4 <= p.size(), WireError::kMalformed,
          "route response ends inside a path length");
    const std::uint32_t len = get_u32(p, pos);
    pos += 4;
    check(len <= (p.size() - pos) / 4, WireError::kMalformed,
          "route response ends inside a path");
    std::vector<graph::NodeId> path(len);
    for (std::uint32_t h = 0; h < len; ++h) {
      path[h] = get_u32(p, pos);
      pos += 4;
    }
    routes.push_back(std::move(path));
  }
  check(pos == p.size(), WireError::kMalformed,
        "trailing bytes after the declared routes");
  return routes;
}

ErrorInfo decode_error(const Frame& frame) {
  check(frame.is_error(), WireError::kMalformed,
        "decode_error on a non-error frame");
  check(!frame.payload.empty(), WireError::kMalformed,
        "error response without a code byte");
  ErrorInfo info;
  info.code = static_cast<WireError>(frame.payload[0]);
  info.detail.assign(frame.payload.begin() + 1, frame.payload.end());
  return info;
}

std::vector<ArtifactSummary> decode_artifact_list(const Frame& frame) {
  std::vector<ArtifactSummary> rows;
  rows.reserve(frame.pair_count);
  std::size_t pos = 0;
  const auto& p = frame.payload;
  for (std::uint32_t i = 0; i < frame.pair_count; ++i) {
    check(pos + 10 <= p.size(), WireError::kMalformed,
          "list response ends inside a row header");
    ArtifactSummary row;
    row.id = get_u32(p, pos);
    row.node_count = get_u32(p, pos + 4);
    row.kind = p[pos + 8];
    const std::size_t name_len = p[pos + 9];
    pos += 10;
    check(pos + name_len <= p.size(), WireError::kMalformed,
          "list response ends inside a name");
    row.name.assign(p.begin() + static_cast<std::ptrdiff_t>(pos),
                    p.begin() + static_cast<std::ptrdiff_t>(pos + name_len));
    pos += name_len;
    rows.push_back(std::move(row));
  }
  check(pos == p.size(), WireError::kMalformed,
        "trailing bytes after the declared rows");
  return rows;
}

}  // namespace optrt::serve
