#include "serve/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "core/graph_io.hpp"
#include "obs/metrics.hpp"

namespace optrt::serve {

namespace {

/// RAII mapping of a whole file (read-only, shared).
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw std::runtime_error("mmap open failed: " + path + ": " +
                               std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("mmap fstat failed: " + path + ": " +
                               std::strerror(err));
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* p = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
      if (p == MAP_FAILED) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("mmap failed: " + path + ": " +
                                 std::strerror(err));
      }
      data_ = static_cast<const std::uint8_t*>(p);
    }
    ::close(fd);  // the mapping survives the descriptor
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  ~MappedFile() {
    if (data_ != nullptr) ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace

bitio::BitVector load_artifact_mmap(const std::string& path) {
  obs::counter("serve.artifact_mmaps").inc();
  const MappedFile file(path);
  return schemes::from_bytes(file.bytes());
}

ArtifactStore::ArtifactStore(std::string directory)
    : directory_(std::move(directory)) {}

LoadReport ArtifactStore::load() {
  namespace fs = std::filesystem;
  LoadReport report;
  auto fresh = std::make_shared<Catalog>();

  // Sorted stems give deterministic, reload-stable artifact ids.
  std::vector<std::string> stems;
  try {
    for (const auto& entry : fs::directory_iterator(directory_)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() == ".ort") stems.push_back(p.stem().string());
    }
  } catch (const fs::filesystem_error& e) {
    report.failures.push_back({directory_, e.what()});
    return report;
  }
  std::sort(stems.begin(), stems.end());

  for (const std::string& stem : stems) {
    const std::string ort = directory_ + "/" + stem + ".ort";
    const std::string eg = directory_ + "/" + stem + ".eg";
    auto served = std::make_unique<ServedArtifact>();
    served->id = static_cast<std::uint32_t>(fresh->artifacts.size());
    served->name = stem;
    try {
      served->graph = std::make_unique<graph::Graph>(core::load_graph(eg));
    } catch (const std::exception& e) {
      report.failures.push_back({eg, e.what()});
      continue;
    }
    try {
      const bitio::BitVector artifact = load_artifact_mmap(ort);
      served->kind = schemes::peek_kind(artifact);
      served->compiled =
          schemes::compile_fast_from_artifact(artifact, *served->graph);
    } catch (const std::exception& e) {
      report.failures.push_back({ort, e.what()});
      continue;
    }
    fresh->artifacts.push_back(std::move(served));
    ++report.loaded;
  }

  if (report.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    fresh->epoch = next_epoch_++;
    catalog_ = std::move(fresh);
    obs::counter("serve.reloads").inc();
    obs::gauge("serve.catalog_epoch").set(
        static_cast<std::int64_t>(catalog_->epoch));
    obs::gauge("serve.artifacts").set(
        static_cast<std::int64_t>(catalog_->artifacts.size()));
  } else {
    obs::counter("serve.reload_errors").inc();
  }
  return report;
}

std::shared_ptr<const Catalog> ArtifactStore::catalog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_;
}

}  // namespace optrt::serve
