#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/parallel.hpp"
#include "model/scheme.hpp"
#include "model/verifier.hpp"
#include "obs/metrics.hpp"

namespace optrt::serve {

namespace {

using Clock = std::chrono::steady_clock;

enum class IoStatus { kOk, kEof, kTimeout, kStopped, kError };

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Waits for `events` on `fd` in poll_interval slices, honouring the stop
/// flag and an overall deadline.
IoStatus wait_ready(int fd, short events, const std::atomic<bool>& stop,
                    Clock::time_point deadline, int poll_interval_ms) {
  while (true) {
    if (stop.load(std::memory_order_relaxed)) return IoStatus::kStopped;
    if (Clock::now() >= deadline) return IoStatus::kTimeout;
    struct pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (rc > 0) {
      if ((pfd.revents & (events | POLLHUP | POLLERR)) != 0) return IoStatus::kOk;
    }
  }
}

IoStatus read_exact(int fd, std::uint8_t* buf, std::size_t n,
                    const std::atomic<bool>& stop, Clock::time_point deadline,
                    int poll_interval_ms) {
  std::size_t done = 0;
  while (done < n) {
    const IoStatus ready =
        wait_ready(fd, POLLIN, stop, deadline, poll_interval_ms);
    if (ready != IoStatus::kOk) return ready;
    const ssize_t r = ::recv(fd, buf + done, n - done, 0);
    if (r == 0) return IoStatus::kEof;
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return IoStatus::kError;
    }
    done += static_cast<std::size_t>(r);
  }
  return IoStatus::kOk;
}

IoStatus write_all(int fd, const std::uint8_t* buf, std::size_t n,
                   const std::atomic<bool>& stop, Clock::time_point deadline,
                   int poll_interval_ms) {
  std::size_t done = 0;
  while (done < n) {
    const IoStatus ready =
        wait_ready(fd, POLLOUT, stop, deadline, poll_interval_ms);
    if (ready != IoStatus::kOk) return ready;
    const ssize_t r = ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return IoStatus::kError;
    }
    done += static_cast<std::size_t>(r);
  }
  return IoStatus::kOk;
}

}  // namespace

std::string format_load_failure(const LoadFailure& failure) {
  return "error: " + failure.path + ": " + failure.message;
}

std::vector<std::uint64_t> latency_buckets() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 256; b <= (std::uint64_t{1} << 32); b *= 4) {
    bounds.push_back(b);
  }
  return bounds;
}

Server::Server(ArtifactStore& store, ServerConfig config)
    : store_(store), config_(std::move(config)) {
  if (config_.threads == 0) config_.threads = core::default_threads();
  if (config_.threads < 2) config_.threads = 2;
}

Server::~Server() {
  stop();
  for (const int fd : listen_fds_) ::close(fd);
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (const int fd : pending_) ::close(fd);
  if (!bound_unix_path_.empty()) ::unlink(bound_unix_path_.c_str());
}

void Server::bind() {
  if (!config_.unix_path.empty()) {
    struct sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("unix socket path too long: " +
                               config_.unix_path);
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
    ::unlink(config_.unix_path.c_str());  // stale socket from a prior run
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 128) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("cannot listen on " + config_.unix_path + ": " +
                               std::strerror(err));
    }
    set_nonblocking(fd);
    listen_fds_.push_back(fd);
    bound_unix_path_ = config_.unix_path;
  }
  if (config_.tcp_port >= 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::inet_pton(AF_INET, config_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw std::runtime_error("bad TCP host: " + config_.tcp_host);
    }
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 128) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("cannot listen on " + config_.tcp_host + ":" +
                               std::to_string(config_.tcp_port) + ": " +
                               std::strerror(err));
    }
    struct sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
        0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
    set_nonblocking(fd);
    listen_fds_.push_back(fd);
  }
}

void Server::stop() {
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
}

void Server::adopt_connection(int fd) {
  obs::counter("serve.connections").inc();
  set_nonblocking(fd);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    pending_.push_back(fd);
  }
  queue_cv_.notify_one();
}

void Server::run() {
  core::ThreadPool pool(config_.threads);
  const std::size_t lanes = pool.thread_count();
  pool.parallel_for(lanes, [this](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (stopped()) return;  // a lane claimed after shutdown does nothing
      if (i == 0) {
        accept_loop();
      } else {
        worker_loop();
      }
    }
  });
}

void Server::accept_loop() {
  while (!stopped()) {
    std::vector<struct pollfd> pfds;
    pfds.reserve(listen_fds_.size());
    for (const int fd : listen_fds_) pfds.push_back({fd, POLLIN, 0});
    const int rc = ::poll(pfds.empty() ? nullptr : pfds.data(),
                          static_cast<nfds_t>(pfds.size()),
                          config_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) break;
    for (const struct pollfd& pfd : pfds) {
      if ((pfd.revents & POLLIN) == 0) continue;
      while (true) {
        const int conn = ::accept(pfd.fd, nullptr, nullptr);
        if (conn < 0) break;  // EAGAIN: drained this listener
        adopt_connection(conn);
      }
    }
    if (poll_hook) poll_hook();
  }
}

void Server::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopped() || !pending_.empty(); });
      if (pending_.empty()) return;  // stop with nothing left to serve
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
    obs::counter("serve.connections_closed").inc();
  }
}

void Server::serve_connection(int fd) {
  const obs::Counter bytes_in = obs::counter("serve.bytes_in");
  const obs::Counter bytes_out = obs::counter("serve.bytes_out");
  const obs::Histogram latency =
      obs::histogram("serve.request_ns", latency_buckets());
  std::vector<std::uint8_t> buffer;
  while (!stopped()) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
    buffer.resize(kWireHeaderBytes);
    const IoStatus head = read_exact(fd, buffer.data(), kWireHeaderBytes,
                                     stop_, deadline, config_.poll_interval_ms);
    if (head != IoStatus::kOk) return;  // clean EOF, timeout, stop, or error
    std::size_t payload_len = 0;
    Frame header;
    try {
      payload_len = parse_header(buffer, header);
    } catch (const ProtocolError& e) {
      // The stream cannot be resynchronized after a bad header: answer
      // with the typed error and drop the connection.
      obs::counter("serve.errors").inc();
      obs::counter(std::string("serve.errors.") + to_string(e.code())).inc();
      const auto out =
          encode_frame(make_error_response(0, e.code(), e.what()));
      (void)write_all(fd, out.data(), out.size(), stop_, deadline,
                      config_.poll_interval_ms);
      return;
    }
    buffer.resize(kWireHeaderBytes + payload_len);
    const IoStatus body =
        read_exact(fd, buffer.data() + kWireHeaderBytes, payload_len, stop_,
                   deadline, config_.poll_interval_ms);
    if (body != IoStatus::kOk) {
      // The peer declared a payload it never sent.
      obs::counter("serve.errors").inc();
      obs::counter("serve.errors.truncated").inc();
      const auto out = encode_frame(make_error_response(
          header.artifact_id, WireError::kTruncated,
          "connection ended inside the declared payload"));
      (void)write_all(fd, out.data(), out.size(), stop_, deadline,
                      config_.poll_interval_ms);
      return;
    }
    bytes_in.inc(buffer.size());

    const auto start = Clock::now();
    const std::vector<std::uint8_t> response = handle_request(buffer);
    latency.observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count()));
    bytes_out.inc(response.size());
    if (write_all(fd, response.data(), response.size(), stop_, deadline,
                  config_.poll_interval_ms) != IoStatus::kOk) {
      return;
    }
    // A response frame that reported an unsynchronizable stream error
    // (bad magic etc.) is followed by a close on our side too.
    if (response.size() > 5 && response[5] == kErrorOpcode &&
        response.size() > kWireHeaderBytes) {
      const auto code = static_cast<WireError>(response[kWireHeaderBytes]);
      if (code == WireError::kBadMagic || code == WireError::kVersionMismatch ||
          code == WireError::kTruncated) {
        return;
      }
    }
  }
}

std::vector<std::uint8_t> Server::handle_request(
    std::span<const std::uint8_t> frame_bytes) {
  obs::counter("serve.requests").inc();
  std::uint32_t echo_id = 0;
  try {
    {
      // Salvage the artifact id for the error echo when at least the
      // header parses.
      Frame header;
      try {
        (void)parse_header(frame_bytes, header);
        echo_id = header.artifact_id;
      } catch (const ProtocolError&) {
      }
    }
    const Frame request = parse_frame(frame_bytes);
    return encode_frame(dispatch(request));
  } catch (const ProtocolError& e) {
    obs::counter("serve.errors").inc();
    obs::counter(std::string("serve.errors.") + to_string(e.code())).inc();
    return encode_frame(make_error_response(echo_id, e.code(), e.what()));
  } catch (const std::exception& e) {
    obs::counter("serve.errors").inc();
    obs::counter("serve.errors.internal").inc();
    return encode_frame(
        make_error_response(echo_id, WireError::kInternal, e.what()));
  }
}

Frame Server::dispatch(const Frame& request) {
  if (request.is_response() || request.is_error()) {
    throw ProtocolError(WireError::kBadOpcode,
                        "response opcode in request position");
  }
  const auto op = static_cast<Opcode>(request.opcode);
  obs::counter(std::string("serve.requests.") + to_string(op)).inc();

  Frame reply;
  reply.opcode = static_cast<std::uint8_t>(request.opcode | kResponseBit);
  reply.artifact_id = request.artifact_id;

  switch (op) {
    case Opcode::kPing:
      return reply;

    case Opcode::kNextHop:
    case Opcode::kRoute: {
      // The catalog snapshot is pinned for the whole request: a reload
      // swapping underneath cannot invalidate this batch.
      const std::shared_ptr<const Catalog> catalog = store_.catalog();
      const ServedArtifact* artifact = catalog->find(request.artifact_id);
      if (artifact == nullptr) {
        throw ProtocolError(WireError::kUnknownArtifact,
                            "artifact id " +
                                std::to_string(request.artifact_id) +
                                " is not served");
      }
      const std::vector<QueryPair> pairs = decode_query_pairs(request);
      const auto n = static_cast<graph::NodeId>(artifact->node_count());
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (pairs[i].src >= n || pairs[i].dst >= n ||
            pairs[i].src == pairs[i].dst) {
          throw ProtocolError(WireError::kBadPair,
                              "pair " + std::to_string(i) +
                                  " out of range or equal");
        }
      }
      const model::RoutingScheme& scheme = *artifact->compiled.scheme;
      reply.pair_count = request.pair_count;
      obs::counter("serve.pairs").inc(pairs.size());

      if (op == Opcode::kNextHop) {
        // Per-connection batching: the whole wire batch goes through one
        // route_batch call on the compiled fast path.
        std::vector<model::RoutePair> batch(pairs.size());
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          batch[i] = {pairs[i].src, scheme.label_of(pairs[i].dst)};
        }
        std::vector<graph::NodeId> hops(pairs.size());
        artifact->compiled.fast->route_batch(batch, hops);
        reply.payload.reserve(hops.size() * 4);
        for (const graph::NodeId hop : hops) put_u32(reply.payload, hop);
        return reply;
      }

      // kRoute: the honest hop-by-hop walk (persistent header, exactly
      // the CLI `route` semantics), one path per pair.
      const std::size_t budget = model::default_hop_budget(scheme.node_count());
      for (const QueryPair& pair : pairs) {
        std::vector<graph::NodeId> path;
        model::MessageHeader header;
        graph::NodeId at = pair.src;
        const graph::NodeId dest_label = scheme.label_of(pair.dst);
        while (at != pair.dst) {
          if (path.size() >= budget) {
            throw ProtocolError(WireError::kInternal,
                                "route exceeded the hop budget");
          }
          const graph::NodeId next = scheme.next_hop(at, dest_label, header);
          header.came_from = at;
          at = next;
          path.push_back(at);
        }
        put_u32(reply.payload, static_cast<std::uint32_t>(path.size()));
        for (const graph::NodeId hop : path) put_u32(reply.payload, hop);
      }
      return reply;
    }

    case Opcode::kList: {
      const std::shared_ptr<const Catalog> catalog = store_.catalog();
      reply.pair_count =
          static_cast<std::uint32_t>(catalog->artifacts.size());
      for (const auto& artifact : catalog->artifacts) {
        put_u32(reply.payload, artifact->id);
        put_u32(reply.payload,
                static_cast<std::uint32_t>(artifact->node_count()));
        reply.payload.push_back(static_cast<std::uint8_t>(artifact->kind));
        const std::size_t name_len = std::min<std::size_t>(
            artifact->name.size(), 255);
        reply.payload.push_back(static_cast<std::uint8_t>(name_len));
        reply.payload.insert(
            reply.payload.end(), artifact->name.begin(),
            artifact->name.begin() + static_cast<std::ptrdiff_t>(name_len));
      }
      return reply;
    }

    case Opcode::kReload: {
      const LoadReport report = store_.load();
      if (!report.ok()) {
        throw ProtocolError(WireError::kInternal,
                            format_load_failure(report.failures.front()));
      }
      put_u32(reply.payload, static_cast<std::uint32_t>(report.loaded));
      return reply;
    }
  }
  throw ProtocolError(WireError::kBadOpcode, "unhandled opcode");
}

}  // namespace optrt::serve
