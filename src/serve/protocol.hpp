// ORTP v1: the wire protocol of the route-serving daemon.
//
// The serving layer speaks length-prefixed binary frames over Unix or TCP
// stream sockets. Like the ORT2 artifact container the frames carry a
// CRC32 of their payload, so a flipped bit on the wire is a typed error
// response, never a garbage route. All integers are little-endian; the
// fixed header is 24 bytes:
//
//   offset size field
//   0      4    magic "ORTP" (0x5054524F)
//   4      1    version, currently 1
//   5      1    opcode (request) / opcode | 0x80 (success response) /
//               0x7F (error response)
//   6      2    reserved, must be zero
//   8      4    artifact id
//   12     4    pair count
//   16     4    payload length in bytes
//   20     4    CRC32 of the payload bytes
//   24     …    payload
//
// Request payloads:
//   kPing    — empty.
//   kNextHop — pair_count × { u32 src, u32 dst } node ids (8 bytes/pair).
//   kRoute   — same as kNextHop.
//   kList    — empty.
//   kReload  — empty.
//
// Success responses echo the request opcode with the high bit set:
//   kPing    — empty.
//   kNextHop — pair_count × u32 first hop (node id).
//   kRoute   — per pair: u32 hop count k, then k × u32 node ids (the full
//              path, source excluded, destination included).
//   kList    — pair_count = artifact count; per artifact: u32 id, u32 n,
//              u8 scheme kind, u8 name length, name bytes.
//   kReload  — u32 artifacts now served.
//
// The error response (opcode 0x7F) carries u8 error code + UTF-8 detail.
// Every parser failure is a typed ProtocolError classified like the ORT2
// DecodeError taxonomy, and the chaos suite holds the server to "typed
// error or bit-exact round-trip, never a crash or hang" under seeded
// frame corruption.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace optrt::serve {

/// Leading magic of every ORTP frame ("ORTP", little-endian).
inline constexpr std::uint32_t kWireMagic = 0x5054524F;

/// Current protocol version.
inline constexpr std::uint8_t kWireVersion = 1;

/// Fixed frame header size in bytes.
inline constexpr std::size_t kWireHeaderBytes = 24;

/// Resource limits enforced before any payload-driven allocation.
inline constexpr std::size_t kMaxPayloadBytes = 1u << 22;  // 4 MiB
inline constexpr std::size_t kMaxPairsPerRequest = 1u << 16;

/// Request opcodes. Success responses carry opcode | kResponseBit.
enum class Opcode : std::uint8_t {
  kPing = 1,
  kNextHop = 2,
  kRoute = 3,
  kList = 4,
  kReload = 5,
};

inline constexpr std::uint8_t kResponseBit = 0x80;
inline constexpr std::uint8_t kErrorOpcode = 0x7F;

[[nodiscard]] const char* to_string(Opcode op) noexcept;

/// Why a frame (or a request inside a valid frame) was rejected, ordered
/// by the integrity layer that catches it — the wire-side mirror of
/// schemes::DecodeErrorKind.
enum class WireError : std::uint8_t {
  kBadMagic = 1,         ///< leading magic is not "ORTP"
  kVersionMismatch = 2,  ///< unknown protocol version
  kBadOpcode = 3,        ///< opcode outside the request menu
  kTruncated = 4,        ///< stream/buffer ends inside a declared frame
  kChecksumMismatch = 5, ///< payload CRC32 disagrees with the header
  kResourceLimit = 6,    ///< declared payload/pair count exceeds the limits
  kMalformed = 7,        ///< lengths decode but violate the opcode's shape
  kUnknownArtifact = 8,  ///< artifact id not in the served catalog
  kBadPair = 9,          ///< src/dst out of range or equal
  kInternal = 10,        ///< server-side failure while answering
};

[[nodiscard]] const char* to_string(WireError code) noexcept;

/// Typed parse/validation failure; carries the taxonomy code that a
/// server turns into an error response frame.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(WireError code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what),
        code_(code) {}

  [[nodiscard]] WireError code() const noexcept { return code_; }

 private:
  WireError code_;
};

/// One parsed frame: header fields plus owned payload bytes.
struct Frame {
  std::uint8_t opcode = 0;  ///< raw: request, response-bit, or error opcode
  std::uint32_t artifact_id = 0;
  std::uint32_t pair_count = 0;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] bool is_error() const noexcept { return opcode == kErrorOpcode; }
  [[nodiscard]] bool is_response() const noexcept {
    return (opcode & kResponseBit) != 0;
  }

  bool operator==(const Frame&) const = default;
};

/// Little-endian integer accessors used by every payload codec.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
[[nodiscard]] std::uint32_t get_u32(std::span<const std::uint8_t> bytes,
                                    std::size_t offset);

/// Serializes a frame: header (with computed CRC) + payload.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Validates the 24-byte header prefix of `bytes` (magic, version,
/// reserved, limits) and returns the declared payload length. Throws
/// ProtocolError; a buffer shorter than the header is kTruncated.
[[nodiscard]] std::size_t parse_header(std::span<const std::uint8_t> bytes,
                                       Frame& out);

/// Parses one complete frame from the front of `bytes` (header checks,
/// then payload CRC). On success sets `consumed` to the frame's total
/// size. Throws ProtocolError on any violation.
[[nodiscard]] Frame parse_frame(std::span<const std::uint8_t> bytes,
                                std::size_t* consumed = nullptr);

/// One (src, dst) query in node-id space.
struct QueryPair {
  graph::NodeId src = 0;
  graph::NodeId dst = 0;

  bool operator==(const QueryPair&) const = default;
};

/// Request builders.
[[nodiscard]] Frame make_ping_request();
[[nodiscard]] Frame make_next_hop_request(std::uint32_t artifact_id,
                                          std::span<const QueryPair> pairs);
[[nodiscard]] Frame make_route_request(std::uint32_t artifact_id,
                                       std::span<const QueryPair> pairs);
[[nodiscard]] Frame make_list_request();
[[nodiscard]] Frame make_reload_request();

/// Error-response builder (pair_count = 0, artifact id echoed).
[[nodiscard]] Frame make_error_response(std::uint32_t artifact_id,
                                        WireError code,
                                        const std::string& detail);

/// Decodes a kNextHop/kRoute request payload into pairs. Throws
/// ProtocolError(kMalformed) when the payload does not hold exactly
/// pair_count 8-byte pairs.
[[nodiscard]] std::vector<QueryPair> decode_query_pairs(const Frame& frame);

/// Decodes a kNextHop success-response payload (pair_count u32 hops).
[[nodiscard]] std::vector<graph::NodeId> decode_next_hops(const Frame& frame);

/// Decodes a kRoute success-response payload (length-prefixed paths).
[[nodiscard]] std::vector<std::vector<graph::NodeId>> decode_routes(
    const Frame& frame);

/// Decoded error response.
struct ErrorInfo {
  WireError code = WireError::kInternal;
  std::string detail;
};
[[nodiscard]] ErrorInfo decode_error(const Frame& frame);

/// One catalog row of a kList response.
struct ArtifactSummary {
  std::uint32_t id = 0;
  std::uint32_t node_count = 0;
  std::uint8_t kind = 0;  ///< schemes::SchemeKind discriminator
  std::string name;

  bool operator==(const ArtifactSummary&) const = default;
};
[[nodiscard]] std::vector<ArtifactSummary> decode_artifact_list(
    const Frame& frame);

}  // namespace optrt::serve
