#include "serve/daemon.hpp"

#include <csignal>

#include <atomic>
#include <cstdio>
#include <exception>

#include "schemes/serialization.hpp"

namespace optrt::serve {

namespace {

// Signal handlers may only flip flags; the serving threads act on them.
std::atomic<bool> g_stop_requested{false};
std::atomic<bool> g_reload_requested{false};

void on_stop_signal(int) { g_stop_requested.store(true); }
void on_reload_signal(int) { g_reload_requested.store(true); }

}  // namespace

int run_daemon(const DaemonOptions& options) {
  ArtifactStore store(options.artifact_dir);
  const LoadReport initial = store.load();
  if (!initial.ok()) {
    for (const LoadFailure& failure : initial.failures) {
      std::fprintf(stderr, "%s\n", format_load_failure(failure).c_str());
    }
    return 2;
  }

  Server server(store, options.server);
  try {
    server.bind();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  g_stop_requested.store(false);
  g_reload_requested.store(false);
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGHUP, on_reload_signal);
  std::signal(SIGPIPE, SIG_IGN);

  server.poll_hook = [&] {
    if (g_stop_requested.load()) {
      server.stop();
      return;
    }
    if (g_reload_requested.exchange(false)) {
      const LoadReport report = store.load();
      if (report.ok()) {
        std::fprintf(stderr, "optrtd: reloaded %zu artifact(s)\n",
                     report.loaded);
      } else {
        for (const LoadFailure& failure : report.failures) {
          std::fprintf(stderr, "%s\n", format_load_failure(failure).c_str());
        }
        std::fprintf(stderr,
                     "optrtd: reload failed, keeping the previous catalog\n");
      }
    }
  };

  if (options.print_ready) {
    std::printf("optrtd: serving %zu artifact(s) from %s\n", initial.loaded,
                options.artifact_dir.c_str());
    if (!options.server.unix_path.empty()) {
      std::printf("optrtd: listening on unix:%s\n",
                  options.server.unix_path.c_str());
    }
    if (server.tcp_port() >= 0) {
      std::printf("optrtd: listening on tcp:%s:%d\n",
                  options.server.tcp_host.c_str(), server.tcp_port());
    }
    std::fflush(stdout);
  }

  server.run();
  return 0;
}

}  // namespace optrt::serve
