#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace optrt::serve {

namespace {

void read_exact_blocking(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd, buf + done, n - done, 0);
    if (r == 0) {
      throw std::runtime_error("connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("recv failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(r);
  }
}

void write_all_blocking(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(r);
  }
}

}  // namespace

Client::Client(int fd) : fd_(fd) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client Client::connect_unix(const std::string& path) {
  struct sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot connect to " + path + ": " +
                             std::strerror(err));
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad TCP host: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + std::strerror(err));
  }
  return Client(fd);
}

Frame Client::call(const Frame& request) {
  const std::vector<std::uint8_t> out = encode_frame(request);
  write_all_blocking(fd_, out.data(), out.size());

  std::vector<std::uint8_t> in(kWireHeaderBytes);
  read_exact_blocking(fd_, in.data(), kWireHeaderBytes);
  Frame header;
  const std::size_t payload_len = parse_header(in, header);
  in.resize(kWireHeaderBytes + payload_len);
  read_exact_blocking(fd_, in.data() + kWireHeaderBytes, payload_len);
  return parse_frame(in);
}

Frame Client::checked_call(const Frame& request) {
  Frame response = call(request);
  if (response.is_error()) {
    const ErrorInfo info = decode_error(response);
    throw ProtocolError(info.code, info.detail);
  }
  if (response.opcode !=
      static_cast<std::uint8_t>(request.opcode | kResponseBit)) {
    throw ProtocolError(WireError::kMalformed,
                        "response opcode does not match the request");
  }
  return response;
}

void Client::ping() { (void)checked_call(make_ping_request()); }

std::vector<graph::NodeId> Client::next_hops(std::uint32_t artifact_id,
                                             std::span<const QueryPair> pairs) {
  return decode_next_hops(
      checked_call(make_next_hop_request(artifact_id, pairs)));
}

std::vector<std::vector<graph::NodeId>> Client::routes(
    std::uint32_t artifact_id, std::span<const QueryPair> pairs) {
  return decode_routes(checked_call(make_route_request(artifact_id, pairs)));
}

std::vector<ArtifactSummary> Client::list() {
  return decode_artifact_list(checked_call(make_list_request()));
}

std::uint32_t Client::reload() {
  const Frame response = checked_call(make_reload_request());
  return get_u32(response.payload, 0);
}

}  // namespace optrt::serve
