// optrtd's serving core: listeners, the multi-threaded accept loop, and
// the ORTP request dispatcher.
//
// Threading model: Server::run() occupies a core::ThreadPool (the same
// deterministic pool the experiment engine uses) with one long-running
// index per thread — index 0 polls the listeners and accepts, every
// other index drains a blocking queue of connected sockets and serves
// them to completion. A connection is served by exactly one thread at a
// time, so request handling needs no per-connection locking; shared
// state is the artifact store's copy-and-swap catalog plus the sharded
// obs metrics registry, both designed for concurrent use (the tsan CI
// stage holds the accept + hot-reload path to that).
//
// Per-connection batching: a kNextHop request carries up to
// kMaxPairsPerRequest pairs and is answered by a single
// FastPath::route_batch call — the wire batch IS the lookup batch, so a
// serving thread amortizes dispatch exactly like the bench_lookup hot
// loop does.
//
// Shutdown and robustness: every blocking socket operation polls with a
// short timeout and rechecks the stop flag, so stop() (or a daemon
// signal) wins within one poll interval — a half-sent frame from a
// stalled or hostile client can slow only its own connection, never the
// accept loop, and never past idle_timeout_ms.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/store.hpp"

namespace optrt::serve {

struct ServerConfig {
  /// Unix-domain listener path (empty = no Unix listener).
  std::string unix_path;
  /// TCP listener (-1 = no TCP listener, 0 = kernel-chosen port).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Serving threads including the acceptor (0 = core::default_threads(),
  /// clamped to at least 2 so one worker always backs the acceptor).
  std::size_t threads = 0;
  /// Granularity of stop-flag checks inside blocking socket waits.
  int poll_interval_ms = 50;
  /// A connection idle (or stalled mid-frame) this long is closed.
  int idle_timeout_ms = 30000;
};

class Server {
 public:
  Server(ArtifactStore& store, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Creates and binds the configured listeners. Throws std::runtime_error
  /// on bind failure. Call once, before run().
  void bind();

  /// Resolved TCP port after bind() (useful with tcp_port = 0); -1 when
  /// no TCP listener was configured.
  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }

  /// Serves until stop(): occupies the calling thread (acceptor) plus
  /// config.threads - 1 pool workers.
  void run();

  /// Signals run() to wind down; safe from any thread or a poll_hook.
  void stop();

  [[nodiscard]] bool stopped() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Hands an already-connected stream socket to the worker queue — how
  /// the in-process tests drive the server over socketpairs. The server
  /// takes ownership of the descriptor.
  void adopt_connection(int fd);

  /// Answers one request frame: the pure dispatch core of the daemon,
  /// shared by every connection thread. Never throws — every failure
  /// (parse, unknown artifact, bad pair, internal) becomes an encoded
  /// error-response frame.
  [[nodiscard]] std::vector<std::uint8_t> handle_request(
      std::span<const std::uint8_t> frame_bytes);

  /// Invoked by the accept loop about once per poll interval (between
  /// accepts). The daemon routes signal-triggered hot reloads through
  /// this so reload runs on a serving thread, not in a signal handler.
  std::function<void()> poll_hook;

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  [[nodiscard]] Frame dispatch(const Frame& request);

  ArtifactStore& store_;
  ServerConfig config_;
  std::vector<int> listen_fds_;
  int bound_tcp_port_ = -1;
  std::string bound_unix_path_;

  std::atomic<bool> stop_{false};
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker
};

/// Formats a LoadReport failure exactly like optrt_cli's reject_file
/// diagnostic ("error: <path>: <what>") — the parity the end-to-end
/// shell test pins between optrtd and verify-artifact.
[[nodiscard]] std::string format_load_failure(const LoadFailure& failure);

/// Bucket bounds for the serve.request_ns latency histogram (powers of
/// four from 256 ns to ~4 s).
[[nodiscard]] std::vector<std::uint64_t> latency_buckets();

}  // namespace optrt::serve
