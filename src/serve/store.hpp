// The daemon's artifact catalog: a directory of ORT2 artifacts, mmapped,
// decoded, and compiled to their query-optimized FastPath forms.
//
// Layout convention: the directory holds `<name>.ort` artifacts, each
// paired with the `<name>.eg` graph it was compiled for (the graph
// supplies the model's free knowledge to the decoder, exactly as the CLI
// does). Artifact ids are the rank of the name in sorted order, so ids
// are stable across reloads as long as the set of names is.
//
// Hot reload is copy-and-swap: load() builds a complete new immutable
// Catalog and atomically replaces the served pointer. In-flight requests
// keep the shared_ptr they resolved at dispatch time, so a reload never
// invalidates an answer mid-batch — the atomic tmp+rename of
// schemes::save_artifact on the producer side plus this swap on the
// consumer side make artifact rollout torn-write-free end to end.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "schemes/serialization.hpp"

namespace optrt::serve {

/// One served artifact: the graph it binds to, the decoded scheme, and
/// its compiled fast path (FastScheme keeps the scheme alive for the
/// fast path; the graph must outlive the scheme, so it lives here too).
struct ServedArtifact {
  std::uint32_t id = 0;
  std::string name;  ///< file stem, e.g. "g0" for g0.ort + g0.eg
  schemes::SchemeKind kind = schemes::SchemeKind::kFullTable;
  std::unique_ptr<graph::Graph> graph;
  schemes::FastScheme compiled;

  [[nodiscard]] std::size_t node_count() const {
    return compiled.scheme->node_count();
  }
};

/// An immutable snapshot of every served artifact. Shared by reference
/// count between the store and any request currently answering from it.
struct Catalog {
  /// Monotone swap generation: 0 for the pre-load empty catalog, then
  /// incremented once per successful load(). Answers computed from one
  /// shared_ptr all carry the same epoch, so the reload-storm test can
  /// pin "never torn": every batch matches exactly one epoch's oracle.
  /// Not part of the ORTP wire format.
  std::uint64_t epoch = 0;
  std::vector<std::unique_ptr<ServedArtifact>> artifacts;  ///< index == id

  [[nodiscard]] const ServedArtifact* find(std::uint32_t id) const noexcept {
    return id < artifacts.size() ? artifacts[id].get() : nullptr;
  }
};

/// One file that failed to load during a scan, with the CLI-parity
/// diagnostic ("<path>: <kind>: <detail>").
struct LoadFailure {
  std::string path;
  std::string message;
};

/// Outcome of one load()/reload() scan.
struct LoadReport {
  std::size_t loaded = 0;
  std::vector<LoadFailure> failures;
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Reads a whole file through mmap and decodes it as an artifact —
/// byte-identical semantics (and error surface) to schemes::load_artifact,
/// but the page cache backs the bytes instead of a heap copy. Throws
/// std::runtime_error on I/O errors, schemes::DecodeError on bad contents.
[[nodiscard]] bitio::BitVector load_artifact_mmap(const std::string& path);

class ArtifactStore {
 public:
  explicit ArtifactStore(std::string directory);

  /// Scans the directory and builds a fresh catalog. On a fully clean
  /// scan the new catalog replaces the served one atomically. If any
  /// artifact fails, the currently served catalog stays in service and
  /// the failures are reported — the store never swaps in a half-loaded
  /// catalog. Callers decide policy: the daemon treats a failed first
  /// load as fatal (verify-artifact parity) and a failed reload as a
  /// kept-old-catalog warning.
  LoadReport load();

  /// The currently served snapshot (never null after a successful load;
  /// an empty catalog before).
  [[nodiscard]] std::shared_ptr<const Catalog> catalog() const;

  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

 private:
  std::string directory_;
  mutable std::mutex mu_;
  std::uint64_t next_epoch_ = 1;  ///< epoch the next successful swap gets
  std::shared_ptr<const Catalog> catalog_ = std::make_shared<Catalog>();
};

}  // namespace optrt::serve
