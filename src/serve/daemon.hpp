// The optrtd daemon entry point, shared by the standalone `optrtd`
// binary and `optrt_cli serve`.
//
// Lifecycle: load the artifact directory (a failure here is fatal with
// verify-artifact's exit code and diagnostic shape), bind the listeners,
// install signal handlers, and serve until SIGINT/SIGTERM. SIGHUP sets
// an atomic flag that the accept loop's poll hook picks up, so the hot
// reload itself runs on a serving thread — signal handlers only flip
// flags. A reload that fails keeps the old catalog in service and prints
// the per-file diagnostics to stderr.
#pragma once

#include <string>

#include "serve/server.hpp"

namespace optrt::serve {

struct DaemonOptions {
  std::string artifact_dir;
  ServerConfig server;
  bool print_ready = true;  ///< announce listeners on stdout once serving
};

/// Runs the daemon to completion. Returns the process exit code:
/// 0 on clean shutdown, 2 when the initial artifact load or bind fails
/// (diagnostics on stderr, CLI reject_file parity).
int run_daemon(const DaemonOptions& options);

}  // namespace optrt::serve
