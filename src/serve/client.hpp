// Blocking ORTP client: connects to an optrtd daemon over a Unix or TCP
// socket and exchanges one frame per call. Shared by `optrt_cli query`,
// the serving load generator (bench/bench_serving.cpp), and the serve
// test suites — every consumer speaks the protocol through the same
// codec the server does, so a framing bug cannot hide on one side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace optrt::serve {

class Client {
 public:
  /// Wraps an already-connected stream socket (e.g. one end of a
  /// socketpair). Takes ownership of the descriptor.
  explicit Client(int fd);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a Unix-domain listener. Throws std::runtime_error.
  [[nodiscard]] static Client connect_unix(const std::string& path);
  /// Connects to a TCP listener. Throws std::runtime_error.
  [[nodiscard]] static Client connect_tcp(const std::string& host, int port);

  /// Sends one request frame and reads one response frame. Throws
  /// std::runtime_error on transport failure, ProtocolError when the
  /// response bytes do not parse.
  [[nodiscard]] Frame call(const Frame& request);

  /// Typed helpers: send the request, decode the success response, and
  /// throw ProtocolError (carrying the server's code + detail) when the
  /// server answered with an error frame.
  void ping();
  [[nodiscard]] std::vector<graph::NodeId> next_hops(
      std::uint32_t artifact_id, std::span<const QueryPair> pairs);
  [[nodiscard]] std::vector<std::vector<graph::NodeId>> routes(
      std::uint32_t artifact_id, std::span<const QueryPair> pairs);
  [[nodiscard]] std::vector<ArtifactSummary> list();
  /// Returns the number of artifacts served after the reload.
  std::uint32_t reload();

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  [[nodiscard]] Frame checked_call(const Frame& request);

  int fd_ = -1;
};

}  // namespace optrt::serve
