#include "net/construction.hpp"

#include <algorithm>

#include "bitio/codes.hpp"

namespace optrt::net {

ConstructionResult distributed_compact_construction(
    const graph::Graph& g, const schemes::CompactNodeOptions& options) {
  const std::size_t n = g.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));

  ConstructionResult result;
  result.node_tables.resize(n);

  // Round 1: every node v sends its neighbour list over every incident
  // edge. We account for the traffic and materialize, per receiver, the
  // local 2-hop view the messages add up to.
  for (graph::NodeId v = 0; v < n; ++v) {
    const std::size_t d = g.degree(v);
    result.messages += d;
    result.message_bits +=
        static_cast<std::uint64_t>(d) * d * id_width;  // d messages × d ids
  }

  for (graph::NodeId u = 0; u < n; ++u) {
    // u's local view after the exchange: its own edges plus every edge
    // {v, w} reported by a neighbour v. (Edges between two neighbours are
    // reported twice; insert once.)
    graph::Graph view(n);
    for (graph::NodeId v : g.neighbors(u)) view.add_edge(u, v);
    for (graph::NodeId v : g.neighbors(u)) {
      for (graph::NodeId w : g.neighbors(v)) {
        if (w != u && !view.has_edge(v, w)) view.add_edge(v, w);
      }
    }
    // The Theorem 1 builder only inspects edges incident to u and to u's
    // neighbours — all present in the view — so this is bit-identical to
    // the centralized construction.
    result.node_tables[u] =
        schemes::build_compact_node(view, u, options).bits;
  }
  return result;
}

}  // namespace optrt::net
