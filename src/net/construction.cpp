#include "net/construction.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <random>
#include <set>
#include <utility>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "core/parallel.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "schemes/errors.hpp"

namespace optrt::net {

namespace {

using congest::Context;
using congest::Message;
using congest::Received;
using graph::NodeId;
using graph::PortId;

// Message types, shared across the three protocols (each run uses one
// protocol, but distinct tags keep cross-phase strays detectable).
constexpr std::uint16_t kMsgNeighbors = 1;
constexpr std::uint16_t kMsgFtFlood = 2;
constexpr std::uint16_t kMsgFtAudit = 3;
constexpr std::uint16_t kMsgTzTree = 10;
constexpr std::uint16_t kMsgTzClaim = 11;
constexpr std::uint16_t kMsgTzSum = 12;
constexpr std::uint16_t kMsgTzTotal = 13;
constexpr std::uint16_t kMsgTzLm = 14;
constexpr std::uint16_t kMsgTzAnn = 15;
constexpr std::uint16_t kMsgTzVeto = 16;
constexpr std::uint16_t kMsgTzReg = 17;
constexpr std::uint16_t kMsgTzAudit = 18;

/// Sticky per-node failure flag; merge keeps the most severe.
struct NodeFlag {
  ConstructStatus status = ConstructStatus::kOk;
  std::string detail;

  void raise(ConstructStatus s, const char* what) {
    if (static_cast<int>(s) > static_cast<int>(status)) {
      status = s;
      detail = what;
    }
  }
};

/// Folds per-node flags into one report (worst status wins; the detail
/// names the least node that raised it — deterministic).
template <typename Nodes>
void merge_flags(const Nodes& nodes, ConstructStatus& status,
                 std::string& detail) {
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    const NodeFlag& f = nodes[v]->flag();
    if (static_cast<int>(f.status) > static_cast<int>(status)) {
      status = f.status;
      detail = "node " + std::to_string(v) + ": " + f.detail;
    }
  }
}

// --- Theorem 1 compact tables: one neighbour-exchange round ---------------

class CompactNode final : public congest::ProtocolNode {
 public:
  explicit CompactNode(unsigned id_width) : id_width_(id_width) {}

  void on_start(Context& ctx) override {
    ctx.label_phase("compact.exchange");
    Message m;
    m.type = kMsgNeighbors;
    const auto d = static_cast<PortId>(ctx.degree());
    m.bits = static_cast<std::uint32_t>(d * id_width_);
    m.words.reserve(d);
    for (PortId p = 0; p < d; ++p) m.words.push_back(ctx.neighbor(p));
    ctx.send_all(m);
  }

  void on_round(Context& ctx, std::span<const Received> inbox) override {
    for (const Received& r : inbox) {
      if (r.msg.type != kMsgNeighbors) {
        flag_.raise(ConstructStatus::kInconsistent, "unexpected message");
        continue;
      }
      lists_.emplace_back(ctx.neighbor(r.port), r.msg.words);
    }
  }

  [[nodiscard]] const NodeFlag& flag() const { return flag_; }

  /// (neighbour id, its reported neighbour list), ascending by sender.
  std::vector<std::pair<NodeId, std::vector<std::uint32_t>>> lists_;

 private:
  unsigned id_width_;
  NodeFlag flag_;
};

void account(const char* proto, const congest::RunStats& stats,
             ConstructStatus status) {
  const std::string base = std::string("construction.") + proto;
  obs::counter(base + ".builds").inc();
  obs::counter(base + ".rounds").inc(stats.rounds);
  obs::counter(base + ".messages").inc(stats.messages);
  obs::counter(base + ".message_bits").inc(stats.message_bits);
  if (status != ConstructStatus::kOk) {
    obs::counter(base + ".failures").inc();
  }
}

}  // namespace

const char* to_string(ConstructStatus status) noexcept {
  switch (status) {
    case ConstructStatus::kOk:
      return "ok";
    case ConstructStatus::kInapplicable:
      return "inapplicable";
    case ConstructStatus::kIncompleteInfo:
      return "incomplete-info";
    case ConstructStatus::kInconsistent:
      return "inconsistent";
    case ConstructStatus::kTopologyChanged:
      return "topology-changed";
    case ConstructStatus::kInvalidTables:
      return "invalid-tables";
    case ConstructStatus::kStalled:
      return "stalled";
  }
  return "unknown";
}

ConstructionResult distributed_compact_construction(
    const graph::Graph& g, const schemes::CompactNodeOptions& options,
    const ProtocolOptions& protocol) {
  const std::size_t n = g.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));

  std::vector<std::unique_ptr<CompactNode>> nodes;
  nodes.reserve(n);
  std::vector<congest::ProtocolNode*> ptrs;
  ptrs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<CompactNode>(id_width));
    ptrs.push_back(nodes.back().get());
  }

  congest::EngineOptions eng_opt;
  eng_opt.threads = protocol.threads;
  eng_opt.max_rounds = protocol.max_rounds;
  congest::Engine engine(g, eng_opt);
  if (protocol.faults != nullptr) engine.schedule(*protocol.faults);
  const auto run = engine.run(ptrs);

  ConstructionResult result;
  result.rounds = run.rounds;
  result.messages = run.messages;
  result.message_bits = run.message_bits;
  result.dropped = run.dropped;
  result.phase_stats = run.phase_stats;
  if (run.status != congest::RunStatus::kOk) {
    result.status = ConstructStatus::kStalled;
    result.detail = to_string(run.status);
    account("compact", run, result.status);
    return result;
  }
  merge_flags(nodes, result.status, result.detail);

  // Local completeness: a node knows its neighbour set, so a dropped list
  // is locally detectable.
  for (NodeId u = 0; u < n && result.status == ConstructStatus::kOk; ++u) {
    if (nodes[u]->lists_.size() != g.degree(u)) {
      result.status = ConstructStatus::kIncompleteInfo;
      result.detail =
          "node " + std::to_string(u) + ": neighbour list lost to a fault";
    }
  }
  if (result.status != ConstructStatus::kOk) {
    account("compact", run, result.status);
    return result;
  }

  // Every node now builds its table from its exact 2-hop view. This is
  // pure local computation; parallelizing it is outside the CONGEST cost
  // model and deterministic (index-ordered merge).
  struct Built {
    bitio::BitVector bits;
    std::string error;
    bool ok = false;
  };
  auto built = core::parallel_map<Built>(
      protocol.threads, n, [&](std::size_t u) {
        Built b;
        graph::Graph view(n);
        for (NodeId v : g.neighbors(static_cast<NodeId>(u))) {
          view.add_edge(static_cast<NodeId>(u), v);
        }
        for (const auto& [v, list] : nodes[u]->lists_) {
          for (const std::uint32_t w : list) {
            if (w != u && !view.has_edge(v, static_cast<NodeId>(w))) {
              view.add_edge(v, static_cast<NodeId>(w));
            }
          }
        }
        try {
          b.bits = schemes::build_compact_node(view, static_cast<NodeId>(u),
                                               options)
                       .bits;
          b.ok = true;
        } catch (const schemes::SchemeInapplicable& e) {
          b.error = e.what();
        }
        return b;
      });
  result.node_tables.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    if (!built[u].ok) {
      if (protocol.faults == nullptr) {
        account("compact", run, ConstructStatus::kInapplicable);
        throw schemes::SchemeInapplicable(built[u].error);
      }
      result.status = ConstructStatus::kInapplicable;
      result.detail = "node " + std::to_string(u) + ": " + built[u].error;
      result.node_tables.clear();
      account("compact", run, result.status);
      return result;
    }
    result.node_tables[u] = std::move(built[u].bits);
  }
  account("compact", run, result.status);
  return result;
}

// --- Full-table oracle protocol: n simultaneous BFS floods ----------------

namespace {

class FullTableNode final : public congest::ProtocolNode {
 public:
  FullTableNode(std::size_t n, unsigned id_width, unsigned cnt_width)
      : n_(n), id_width_(id_width), cnt_width_(cnt_width) {}

  void on_start(Context& ctx) override {
    ctx.label_phase("full.flood");
    dist_.assign(n_, graph::kUnreachable);
    port_.assign(n_, 0);
    dist_[ctx.id()] = 0;
    Message m;
    m.type = kMsgFtFlood;
    m.bits = id_width_;
    m.words = {ctx.id(), 1};
    ctx.send_all(m);
  }

  void on_round(Context& ctx, std::span<const Received> inbox) override {
    if (state_ == St::kFlood) {
      // First receptions only; within the round take the least hop, then
      // the least arrival port (= least sender id: ports are sorted).
      std::map<NodeId, std::pair<std::uint32_t, PortId>> stage;
      for (const Received& r : inbox) {
        if (r.msg.type != kMsgFtFlood) {
          flag_.raise(ConstructStatus::kInconsistent, "unexpected message");
          continue;
        }
        const NodeId v = r.msg.words[0];
        const std::uint32_t h = r.msg.words[1];
        if (dist_[v] != graph::kUnreachable) continue;
        auto [it, fresh] = stage.try_emplace(v, h, r.port);
        if (!fresh && (h < it->second.first ||
                       (h == it->second.first && r.port < it->second.second))) {
          it->second = {h, r.port};
        }
      }
      for (const auto& [v, hp] : stage) {
        dist_[v] = hp.first;
        port_[v] = hp.second;
        Message fwd;
        fwd.type = kMsgFtFlood;
        fwd.bits = id_width_;
        fwd.words = {v, hp.first + 1};
        ctx.send_all(fwd);
      }
      return;
    }
    // Audit round: distance vectors from every live neighbour.
    for (const Received& r : inbox) {
      if (r.msg.type != kMsgFtAudit) {
        flag_.raise(ConstructStatus::kInconsistent, "unexpected message");
        continue;
      }
      ++audit_msgs_;
      std::size_t i = 0;
      const std::size_t count = r.msg.words[i++];
      for (std::size_t k = 0; k < count; ++k) {
        const NodeId v = r.msg.words[i++];
        const std::uint32_t d_they = r.msg.words[i++];
        const std::uint32_t d_mine = dist_[v];
        if (d_mine == graph::kUnreachable) {
          // They reached v; a connected component is all-or-nothing, so a
          // missing entry here means a flood was lost, not disconnection.
          flag_.raise(ConstructStatus::kInconsistent,
                      "flood entry missing at a neighbour of its holder");
        } else if ((d_they > d_mine ? d_they - d_mine : d_mine - d_they) >
                   1) {
          flag_.raise(ConstructStatus::kInconsistent,
                      "distance Lipschitz violation");
        }
      }
    }
  }

  bool on_phase_end(Context& ctx) override {
    if (state_ == St::kFlood) {
      state_ = St::kAudit;
      ctx.label_phase("full.audit");
      const auto d = static_cast<PortId>(ctx.degree());
      for (PortId p = 0; p < d; ++p) {
        if (!ctx.port_up(p)) {
          flag_.raise(ConstructStatus::kTopologyChanged,
                      "incident link down at audit");
        }
      }
      Message m;
      m.type = kMsgFtAudit;
      std::uint32_t count = 0;
      m.words.push_back(0);  // patched below
      for (NodeId v = 0; v < n_; ++v) {
        if (dist_[v] == graph::kUnreachable) continue;
        m.words.push_back(v);
        m.words.push_back(dist_[v]);
        ++count;
      }
      m.words[0] = count;
      m.bits = cnt_width_ + count * (id_width_ + cnt_width_);
      ctx.send_all(m);
      return true;
    }
    if (state_ == St::kAudit) {
      if (audit_msgs_ != ctx.degree()) {
        flag_.raise(ConstructStatus::kTopologyChanged, "audit message lost");
      }
      state_ = St::kDone;
    }
    return false;
  }

  [[nodiscard]] const NodeFlag& flag() const { return flag_; }

  std::vector<std::uint32_t> dist_;
  std::vector<PortId> port_;

 private:
  enum class St : std::uint8_t { kFlood, kAudit, kDone };
  std::size_t n_;
  unsigned id_width_;
  unsigned cnt_width_;
  St state_ = St::kFlood;
  std::size_t audit_msgs_ = 0;
  NodeFlag flag_;
};

}  // namespace

FullTableConstructionResult distributed_full_table_construction(
    const graph::Graph& g, const ProtocolOptions& protocol) {
  const std::size_t n = g.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  const unsigned cnt_width = bitio::ceil_log2_plus1(n);

  std::vector<std::unique_ptr<FullTableNode>> nodes;
  nodes.reserve(n);
  std::vector<congest::ProtocolNode*> ptrs;
  ptrs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<FullTableNode>(n, id_width, cnt_width));
    ptrs.push_back(nodes.back().get());
  }

  congest::EngineOptions eng_opt;
  eng_opt.threads = protocol.threads;
  eng_opt.max_rounds = protocol.max_rounds;
  congest::Engine engine(g, eng_opt);
  if (protocol.faults != nullptr) engine.schedule(*protocol.faults);
  const auto run = engine.run(ptrs);

  FullTableConstructionResult result;
  result.rounds = run.rounds;
  result.messages = run.messages;
  result.message_bits = run.message_bits;
  result.dropped = run.dropped;
  result.phase_stats = run.phase_stats;
  if (run.status != congest::RunStatus::kOk) {
    result.status = ConstructStatus::kStalled;
    result.detail = to_string(run.status);
    account("full_table", run, result.status);
    return result;
  }
  merge_flags(nodes, result.status, result.detail);
  if (result.status != ConstructStatus::kOk) {
    account("full_table", run, result.status);
    return result;
  }

  result.node_tables.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    const unsigned width =
        bitio::ceil_log2(std::max<std::size_t>(g.degree(u), 1));
    bitio::BitWriter w;
    for (NodeId v = 0; v < n; ++v) {
      const bool self_or_unreachable =
          v == u || nodes[u]->dist_[v] == graph::kUnreachable;
      w.write_bits(self_or_unreachable ? 0 : nodes[u]->port_[v], width);
    }
    result.node_tables[u] = w.take();
  }
  account("full_table", run, result.status);
  return result;
}

// --- Thorup-Zwick k = 2: election, floods, announcements, audit -----------

namespace {

/// Common knowledge every TzNode derives from (n, seed) alone — each node
/// conceptually replays the shared-seed PRNG stream locally and keeps the
/// draws addressed to it (draw a·n + v belongs to node v at attempt a).
struct TzShared {
  std::size_t n = 0;
  unsigned id_width = 0;
  unsigned cnt_width = 0;  // also the distance/count charge width
  std::size_t cap = 0;
  std::size_t max_attempts = 0;
  double p = 1.0;
  std::vector<double> uniforms;  // max_attempts · n draws of Rng(seed)
};

class TzNode final : public congest::ProtocolNode {
 public:
  enum class St : std::uint8_t {
    kTreeFlood,
    kTreeClaim,
    kTreeSum,
    kFlood,
    kAnnounce,
    kVeto,
    kRegister,
    kAudit,
    kDone,
  };

  TzNode(const TzShared* shared, NodeId id, std::size_t degree)
      : shared_(shared), id_(id), degree_(degree) {}

  void on_start(Context& ctx) override {
    ctx.label_phase("tz.tree");
    if (id_ == 0) {
      depth_ = 0;
      Message m;
      m.type = kMsgTzTree;
      m.bits = shared_->cnt_width;
      m.words = {token(), 1};
      ctx.send_all(m);
    }
  }

  void on_round(Context& ctx, std::span<const Received> inbox) override {
    switch (state_) {
      case St::kTreeFlood:
        round_tree(ctx, inbox);
        break;
      case St::kTreeClaim:
        round_claim(ctx, inbox);
        break;
      case St::kTreeSum:
        round_sum(ctx, inbox);
        break;
      case St::kFlood:
        round_flood(ctx, inbox);
        break;
      case St::kAnnounce:
        round_announce(ctx, inbox);
        break;
      case St::kVeto:
        round_veto(ctx, inbox);
        break;
      case St::kRegister:
        round_register(ctx, inbox);
        break;
      case St::kAudit:
        round_audit(ctx, inbox);
        break;
      case St::kDone:
        flag_.raise(ConstructStatus::kInconsistent, "message after done");
        break;
    }
  }

  bool on_phase_end(Context& ctx) override {
    switch (state_) {
      case St::kTreeFlood:
        state_ = St::kTreeClaim;
        ctx.label_phase("tz.tree.claim");
        if (parent_port_ >= 0) {
          Message m;
          m.type = kMsgTzClaim;
          m.bits = 0;  // payload-free: presence is the claim
          m.words = {token()};
          ctx.send(static_cast<PortId>(parent_port_), std::move(m));
        }
        return true;
      case St::kTreeClaim:
        state_ = St::kTreeSum;
        ctx.label_phase("tz.tree.sum");
        pending_ = children_.size();
        if (pending_ == 0) complete_subtree(ctx);
        return true;
      case St::kTreeSum:
        passive_ = !have_total_;
        if (passive_) {
          flag_.raise(ConstructStatus::kIncompleteInfo,
                      "degree aggregation never arrived");
        }
        avg_degree_ = have_total_ ? static_cast<double>(total_) /
                                        static_cast<double>(shared_->n)
                                  : 0.0;
        start_attempt(ctx);
        return true;
      case St::kFlood:
        return pulse_flood(ctx);
      case St::kAnnounce:
        return pulse_announce(ctx);
      case St::kVeto:
        return pulse_veto(ctx);
      case St::kRegister:
        enter_audit(ctx);
        return true;
      case St::kAudit:
        if (audit_msgs_ != degree_) {
          flag_.raise(ConstructStatus::kTopologyChanged,
                      "audit message lost");
        }
        state_ = St::kDone;
        return false;
      case St::kDone:
        return false;
    }
    return false;
  }

  [[nodiscard]] const NodeFlag& flag() const { return flag_; }

  struct LmEntry {
    std::uint32_t dist = 0;
    PortId least_port = 0;
    std::vector<PortId> parents;  // every first-reception sender
  };
  struct AnnEntry {
    std::uint32_t h = 0;
    std::uint32_t dva = 0;
    PortId port = 0;
    bool in_cluster = false;
  };

  std::map<NodeId, LmEntry> lm_;
  std::map<NodeId, AnnEntry> ann_;
  std::map<NodeId, PortId> exit_learned_;  // populated at landmarks
  std::uint32_t dva_ = 0;
  NodeId l_of_ = 0;
  std::size_t attempt_ = 0;

 private:
  [[nodiscard]] std::uint32_t token() const {
    return (static_cast<std::uint32_t>(state_) << 16) |
           static_cast<std::uint32_t>(attempt_ & 0xffff);
  }

  /// Every TZ message leads with the sender's (state, attempt) token; a
  /// mismatch means the network desynchronized the lockstep phases (only
  /// possible under faults) — sticky-flag it and ignore the message.
  [[nodiscard]] bool tagged(const Received& r, std::uint16_t type) {
    if (r.msg.type != type || r.msg.words.empty() ||
        r.msg.words[0] != token()) {
      flag_.raise(ConstructStatus::kInconsistent, "phase desync");
      return false;
    }
    return true;
  }

  [[nodiscard]] bool coin(std::size_t attempt) const {
    if (passive_) return false;
    const double u = shared_->uniforms[attempt * shared_->n + id_];
    double p_node = shared_->p;
    if (avg_degree_ > 0.0) {
      p_node = std::min(
          1.0, shared_->p * static_cast<double>(degree_) / avg_degree_);
    }
    return u < p_node;
  }

  void round_tree(Context& ctx, std::span<const Received> inbox) {
    if (depth_ != graph::kUnreachable) return;  // already joined
    std::uint32_t best_h = graph::kUnreachable;
    int best_port = -1;
    for (const Received& r : inbox) {
      if (!tagged(r, kMsgTzTree)) continue;
      const std::uint32_t h = r.msg.words[1];
      if (h < best_h || (h == best_h && static_cast<int>(r.port) < best_port)) {
        best_h = h;
        best_port = static_cast<int>(r.port);
      }
    }
    if (best_port < 0) return;
    depth_ = best_h;
    parent_port_ = best_port;
    Message m;
    m.type = kMsgTzTree;
    m.bits = shared_->cnt_width;
    m.words = {token(), depth_ + 1};
    ctx.send_all(m);
  }

  void round_claim(Context&, std::span<const Received> inbox) {
    for (const Received& r : inbox) {
      if (!tagged(r, kMsgTzClaim)) continue;
      children_.push_back(r.port);
    }
  }

  void complete_subtree(Context& ctx) {
    const std::uint64_t subtotal = acc_ + degree_;
    if (id_ == 0) {
      total_ = subtotal;
      have_total_ = true;
      broadcast_total(ctx);
    } else if (parent_port_ >= 0) {
      Message m;
      m.type = kMsgTzSum;
      m.bits = 2 * shared_->cnt_width;
      m.words = {token(), static_cast<std::uint32_t>(subtotal)};
      ctx.send(static_cast<PortId>(parent_port_), std::move(m));
    }
  }

  void broadcast_total(Context& ctx) {
    Message m;
    m.type = kMsgTzTotal;
    m.bits = 2 * shared_->cnt_width;
    m.words = {token(), static_cast<std::uint32_t>(total_)};
    for (const PortId p : children_) {
      Message copy = m;
      ctx.send(p, std::move(copy));
    }
  }

  void round_sum(Context& ctx, std::span<const Received> inbox) {
    for (const Received& r : inbox) {
      if (r.msg.type == kMsgTzSum) {
        if (!tagged(r, kMsgTzSum)) continue;
        acc_ += r.msg.words[1];
        if (pending_ > 0 && --pending_ == 0) complete_subtree(ctx);
      } else if (r.msg.type == kMsgTzTotal) {
        if (!tagged(r, kMsgTzTotal)) continue;
        if (have_total_) continue;
        total_ = r.msg.words[1];
        have_total_ = true;
        broadcast_total(ctx);
      } else {
        flag_.raise(ConstructStatus::kInconsistent, "unexpected message");
      }
    }
  }

  void start_attempt(Context& ctx) {
    lm_.clear();
    ann_.clear();
    veto_seen_.clear();
    veto_max_ = 0;
    veto_any_ = false;
    state_ = St::kFlood;
    ctx.label_phase(degenerate_ ? "tz.flood degenerate"
                                : "tz.flood a" + std::to_string(attempt_));
    lm_self_ = degenerate_ ? id_ == 0 : coin(attempt_);
    if (lm_self_) {
      lm_.emplace(id_, LmEntry{0, 0, {}});
      Message m;
      m.type = kMsgTzLm;
      m.bits = shared_->id_width;
      m.words = {token(), id_, 1};
      ctx.send_all(m);
    }
  }

  void round_flood(Context& ctx, std::span<const Received> inbox) {
    // Stage per landmark: least hop this round, every sender at that hop
    // (the BFS parents), least port.
    struct Stage {
      std::uint32_t h = graph::kUnreachable;
      std::vector<PortId> parents;
    };
    std::map<NodeId, Stage> stage;
    for (const Received& r : inbox) {
      if (!tagged(r, kMsgTzLm)) continue;
      const NodeId l = r.msg.words[1];
      const std::uint32_t h = r.msg.words[2];
      if (lm_.count(l) != 0) continue;
      Stage& s = stage[l];
      if (h < s.h) {
        s.h = h;
        s.parents.clear();
      }
      if (h == s.h) s.parents.push_back(r.port);
    }
    for (auto& [l, s] : stage) {
      LmEntry e;
      e.dist = s.h;
      e.parents = std::move(s.parents);
      e.least_port = *std::min_element(e.parents.begin(), e.parents.end());
      lm_.emplace(l, std::move(e));
      Message fwd;
      fwd.type = kMsgTzLm;
      fwd.bits = shared_->id_width;
      fwd.words = {token(), l, s.h + 1};
      ctx.send_all(fwd);
    }
  }

  bool pulse_flood(Context& ctx) {
    if (lm_.empty()) return rejected_attempt(ctx);  // empty sample
    dva_ = graph::kUnreachable;
    for (const auto& [l, e] : lm_) {
      if (e.dist < dva_) {
        dva_ = e.dist;
        l_of_ = l;  // ascending map order = least id on ties
      }
    }
    state_ = St::kAnnounce;
    ctx.label_phase(degenerate_ ? "tz.announce degenerate"
                                : "tz.announce a" + std::to_string(attempt_));
    if (dva_ >= 1) {
      Message m;
      m.type = kMsgTzAnn;
      m.bits = shared_->id_width + shared_->cnt_width;
      m.words = {token(), id_, dva_, 1};
      ctx.send_all(m);
    }
    return true;
  }

  void round_announce(Context& ctx, std::span<const Received> inbox) {
    struct Stage {
      std::uint32_t h = graph::kUnreachable;
      std::uint32_t dva = 0;
      PortId port = 0;
    };
    std::map<NodeId, Stage> stage;
    for (const Received& r : inbox) {
      if (!tagged(r, kMsgTzAnn)) continue;
      const NodeId v = r.msg.words[1];
      if (v == id_ || ann_.count(v) != 0) continue;
      const std::uint32_t dva = r.msg.words[2];
      const std::uint32_t h = r.msg.words[3];
      Stage& s = stage[v];
      if (h < s.h || (h == s.h && r.port < s.port)) {
        s = Stage{h, dva, r.port};
      }
    }
    for (const auto& [v, s] : stage) {
      AnnEntry e;
      e.h = s.h;
      e.dva = s.dva;
      e.port = s.port;
      e.in_cluster = s.h < s.dva;
      ann_.emplace(v, e);
      if (s.h < s.dva) {  // interior of v's strict ball: keep flooding
        Message fwd;
        fwd.type = kMsgTzAnn;
        fwd.bits = shared_->id_width + shared_->cnt_width;
        fwd.words = {token(), v, s.dva, s.h + 1};
        ctx.send_all(fwd);
      }
    }
  }

  bool pulse_announce(Context& ctx) {
    if (degenerate_) return accept_attempt(ctx);  // fallback skips the cap
    std::size_t cluster = 0;
    for (const auto& [v, e] : ann_) cluster += e.in_cluster ? 1 : 0;
    state_ = St::kVeto;
    ctx.label_phase("tz.veto a" + std::to_string(attempt_));
    if (cluster > shared_->cap) {
      veto_any_ = true;
      veto_max_ = std::max(veto_max_, cluster);
      veto_seen_.insert(id_);
      Message m;
      m.type = kMsgTzVeto;
      m.bits = shared_->id_width + shared_->cnt_width;
      m.words = {token(), id_, static_cast<std::uint32_t>(cluster)};
      ctx.send_all(m);
    }
    return true;
  }

  void round_veto(Context& ctx, std::span<const Received> inbox) {
    for (const Received& r : inbox) {
      if (!tagged(r, kMsgTzVeto)) continue;
      const NodeId origin = r.msg.words[1];
      veto_any_ = true;
      veto_max_ = std::max<std::size_t>(veto_max_, r.msg.words[2]);
      if (veto_seen_.insert(origin).second) {
        Message fwd = r.msg;
        ctx.send_all(fwd);
      }
    }
  }

  bool pulse_veto(Context& ctx) {
    if (!veto_any_) return accept_attempt(ctx);
    // Rejected: remember the best (least global max cluster) sample seen,
    // exactly like the centralized resample loop.
    if (veto_max_ < best_max_) {
      best_max_ = veto_max_;
      best_attempt_ = attempt_;
      best_lm_ = lm_;
      best_ann_ = ann_;
      best_lm_self_ = lm_self_;
      have_best_ = true;
    }
    return rejected_attempt(ctx);
  }

  bool rejected_attempt(Context& ctx) {
    ++attempt_;
    if (attempt_ < shared_->max_attempts) {
      start_attempt(ctx);
      return true;
    }
    if (have_best_) {
      lm_ = std::move(best_lm_);
      ann_ = std::move(best_ann_);
      lm_self_ = best_lm_self_;
      dva_ = graph::kUnreachable;
      for (const auto& [l, e] : lm_) {
        if (e.dist < dva_) {
          dva_ = e.dist;
          l_of_ = l;
        }
      }
      attempt_ = shared_->max_attempts + best_attempt_;  // shared token
      return enter_register(ctx);
    }
    // Every attempt sampled empty: the centralized fallback declares node
    // 0 the sole landmark; run one more (cap-exempt) flood for it.
    degenerate_ = true;
    start_attempt(ctx);
    return true;
  }

  bool accept_attempt(Context& ctx) { return enter_register(ctx); }

  bool enter_register(Context& ctx) {
    state_ = St::kRegister;
    ctx.label_phase("tz.register");
    if (dva_ >= 1 && dva_ != graph::kUnreachable) {
      const auto it = lm_.find(l_of_);
      if (it == lm_.end()) {
        flag_.raise(ConstructStatus::kIncompleteInfo, "no landmark heard");
        return true;
      }
      Message m;
      m.type = kMsgTzReg;
      m.bits = 2 * shared_->id_width;
      m.words = {token(), id_, l_of_};
      for (const PortId p : it->second.parents) {
        Message copy = m;
        ctx.send(p, std::move(copy));
      }
    }
    return true;
  }

  void round_register(Context& ctx, std::span<const Received> inbox) {
    for (const Received& r : inbox) {
      if (!tagged(r, kMsgTzReg)) continue;
      const NodeId v = r.msg.words[1];
      const NodeId l = r.msg.words[2];
      if (l == id_) {
        // All shortest-path successors toward v report in the same round;
        // keep the least port = least id.
        const auto [it, fresh] = exit_learned_.try_emplace(v, r.port);
        if (!fresh && r.port < it->second) it->second = r.port;
        continue;
      }
      if (!reg_seen_.insert(v).second) continue;
      const auto it = lm_.find(l);
      if (it == lm_.end()) {
        flag_.raise(ConstructStatus::kInconsistent,
                    "registration for an unknown landmark");
        continue;
      }
      Message m;
      m.type = kMsgTzReg;
      m.bits = 2 * shared_->id_width;
      m.words = {token(), v, l};
      for (const PortId p : it->second.parents) {
        Message copy = m;
        ctx.send(p, std::move(copy));
      }
    }
  }

  void enter_audit(Context& ctx) {
    state_ = St::kAudit;
    ctx.label_phase("tz.audit");
    const auto d = static_cast<PortId>(degree_);
    for (PortId p = 0; p < d; ++p) {
      if (!ctx.port_up(p)) {
        flag_.raise(ConstructStatus::kTopologyChanged,
                    "incident link down at audit");
      }
    }
    Message m;
    m.type = kMsgTzAudit;
    m.words.push_back(token());
    m.words.push_back(static_cast<std::uint32_t>(lm_.size()));
    for (const auto& [l, e] : lm_) {
      m.words.push_back(l);
      m.words.push_back(e.dist);
    }
    // Cluster entries (v, d̂(v), d(v, A)) plus a self entry — the seed of
    // the neighbour-by-neighbour completeness induction.
    std::vector<std::array<std::uint32_t, 3>> entries;
    for (const auto& [v, e] : ann_) {
      if (e.in_cluster) entries.push_back({v, e.h, e.dva});
    }
    if (dva_ >= 1 && dva_ != graph::kUnreachable) {
      entries.push_back({id_, 0, dva_});
      std::sort(entries.begin(), entries.end());
    }
    m.words.push_back(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) {
      m.words.insert(m.words.end(), e.begin(), e.end());
    }
    m.bits = 2 * shared_->cnt_width +
             static_cast<std::uint32_t>(lm_.size()) *
                 (shared_->id_width + shared_->cnt_width) +
             static_cast<std::uint32_t>(entries.size()) *
                 (shared_->id_width + 2 * shared_->cnt_width);
    ctx.send_all(m);
  }

  void round_audit(Context&, std::span<const Received> inbox) {
    for (const Received& r : inbox) {
      if (!tagged(r, kMsgTzAudit)) continue;
      ++audit_msgs_;
      std::size_t i = 1;
      const std::size_t lm_count = r.msg.words[i++];
      if (lm_count != lm_.size()) {
        flag_.raise(ConstructStatus::kInconsistent,
                    "landmark sets disagree across a link");
        continue;
      }
      auto mine = lm_.begin();
      bool ok = true;
      for (std::size_t k = 0; k < lm_count; ++k, ++mine) {
        const NodeId l = r.msg.words[i++];
        const std::uint32_t d_they = r.msg.words[i++];
        if (mine->first != l) {
          ok = false;
          break;
        }
        const std::uint32_t d_mine = mine->second.dist;
        if ((d_they > d_mine ? d_they - d_mine : d_mine - d_they) > 1) {
          flag_.raise(ConstructStatus::kInconsistent,
                      "landmark distance Lipschitz violation");
        }
      }
      if (!ok) {
        flag_.raise(ConstructStatus::kInconsistent,
                    "landmark sets disagree across a link");
        continue;
      }
      const std::size_t entries = r.msg.words[i++];
      for (std::size_t k = 0; k < entries; ++k) {
        const NodeId v = r.msg.words[i++];
        const std::uint32_t h_they = r.msg.words[i++];
        const std::uint32_t dva_v = r.msg.words[i++];
        if (v == id_) {
          if (h_they > 1 || dva_v != dva_) {
            flag_.raise(ConstructStatus::kInconsistent,
                        "neighbour view of this node is off");
          }
          continue;
        }
        const auto it = ann_.find(v);
        if (it == ann_.end()) {
          if (h_they + 1 < dva_v) {
            flag_.raise(ConstructStatus::kInconsistent,
                        "cluster completeness violation");
          }
          continue;
        }
        const std::uint32_t h_mine = it->second.h;
        if ((h_they > h_mine ? h_they - h_mine : h_mine - h_they) > 1 ||
            it->second.dva != dva_v) {
          flag_.raise(ConstructStatus::kInconsistent,
                      "ball distance Lipschitz violation");
        }
      }
    }
  }

  const TzShared* shared_;
  NodeId id_;
  std::size_t degree_;
  St state_ = St::kTreeFlood;
  NodeFlag flag_;

  // Tree phase.
  std::uint32_t depth_ = graph::kUnreachable;
  int parent_port_ = -1;
  std::vector<PortId> children_;
  std::size_t pending_ = 0;
  std::uint64_t acc_ = 0;
  std::uint64_t total_ = 0;
  bool have_total_ = false;
  bool passive_ = false;
  double avg_degree_ = 0.0;

  // Election.
  bool lm_self_ = false;
  bool degenerate_ = false;
  std::set<NodeId> veto_seen_;
  std::size_t veto_max_ = 0;
  bool veto_any_ = false;
  bool have_best_ = false;
  std::size_t best_attempt_ = 0;
  std::size_t best_max_ = std::numeric_limits<std::size_t>::max();
  std::map<NodeId, LmEntry> best_lm_;
  std::map<NodeId, AnnEntry> best_ann_;
  bool best_lm_self_ = false;

  // Registration / audit.
  std::set<NodeId> reg_seen_;
  std::size_t audit_msgs_ = 0;
};

/// Sum of `rounds` over phase rows whose label starts with `prefix`.
std::size_t rounds_for(const std::vector<congest::PhaseStats>& rows,
                       const std::string& prefix) {
  std::size_t total = 0;
  for (const auto& row : rows) {
    if (row.label.rfind(prefix, 0) == 0) total += row.rounds;
  }
  return total;
}

}  // namespace

TzConstructionResult distributed_tz_construction(
    const graph::Graph& g, const schemes::TzOptions& options,
    const ProtocolOptions& protocol) {
  const std::size_t n = g.node_count();
  if (!graph::is_connected(g)) {
    throw schemes::SchemeInapplicable("tz: graph disconnected");
  }

  TzShared shared;
  shared.n = n;
  shared.id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));
  shared.cnt_width = bitio::ceil_log2_plus1(n);
  shared.cap = schemes::TzScheme::cluster_cap(n);
  shared.max_attempts = std::max<std::size_t>(options.max_resamples, 1);
  shared.p = n >= 2 ? std::min(1.0, std::sqrt(std::log(static_cast<double>(
                                                  n)) /
                                              static_cast<double>(n)))
                    : 1.0;
  // The exact stream the centralized sampler consumes: n draws per
  // attempt, in node order, from one mt19937_64(seed).
  graph::Rng rng(options.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  shared.uniforms.reserve(shared.max_attempts * n);
  for (std::size_t i = 0; i < shared.max_attempts * n; ++i) {
    shared.uniforms.push_back(unit(rng));
  }

  std::vector<std::unique_ptr<TzNode>> nodes;
  nodes.reserve(n);
  std::vector<congest::ProtocolNode*> ptrs;
  ptrs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<TzNode>(&shared, v, g.degree(v)));
    ptrs.push_back(nodes.back().get());
  }

  congest::EngineOptions eng_opt;
  eng_opt.threads = protocol.threads;
  eng_opt.max_rounds = protocol.max_rounds;
  congest::Engine engine(g, eng_opt);
  if (protocol.faults != nullptr) engine.schedule(*protocol.faults);
  const auto run = engine.run(ptrs);

  TzConstructionResult result;
  result.rounds = run.rounds;
  result.messages = run.messages;
  result.message_bits = run.message_bits;
  result.dropped = run.dropped;
  result.phase_stats = run.phase_stats;
  if (run.status != congest::RunStatus::kOk) {
    result.status = ConstructStatus::kStalled;
    result.detail = to_string(run.status);
    account("tz", run, result.status);
    return result;
  }
  merge_flags(nodes, result.status, result.detail);

  // A consistent run has every node holding the same landmark set.
  std::vector<NodeId> landmarks;
  for (const auto& [l, e] : nodes.empty() ? std::map<NodeId, TzNode::LmEntry>{}
                                          : nodes[0]->lm_) {
    landmarks.push_back(l);
  }
  if (result.status == ConstructStatus::kOk) {
    for (NodeId v = 1; v < n; ++v) {
      if (nodes[v]->lm_.size() != landmarks.size() ||
          !std::equal(landmarks.begin(), landmarks.end(),
                      nodes[v]->lm_.begin(),
                      [](NodeId l, const auto& kv) { return l == kv.first; })) {
        result.status = ConstructStatus::kInconsistent;
        result.detail = "node " + std::to_string(v) +
                        ": landmark set disagrees with node 0";
        break;
      }
    }
  }
  if (result.status != ConstructStatus::kOk) {
    account("tz", run, result.status);
    return result;
  }

  // Assemble each node's serialized table from its learned state — the
  // same layout TzScheme writes centrally.
  std::vector<bitio::BitVector> node_bits(n);
  for (NodeId w = 0; w < n; ++w) {
    const unsigned port_width =
        bitio::ceil_log2(std::max<std::size_t>(g.degree(w), 1));
    bitio::BitWriter out;
    for (const NodeId l : landmarks) {
      out.write_bits(l == w ? 0 : nodes[w]->lm_.at(l).least_port, port_width);
    }
    std::vector<std::pair<NodeId, PortId>> cluster;
    for (const auto& [v, e] : nodes[w]->ann_) {
      if (e.in_cluster) cluster.emplace_back(v, e.port);
    }
    out.write_bits(cluster.size(), bitio::ceil_log2_plus1(n));
    for (const auto& [v, port] : cluster) {
      out.write_bits(v, shared.id_width);
      out.write_bits(port, port_width);
    }
    node_bits[w] = out.take();
  }
  try {
    result.scheme = std::make_unique<schemes::TzScheme>(
        g, landmarks, std::move(node_bits));
  } catch (const std::invalid_argument& e) {
    result.status = ConstructStatus::kInvalidTables;
    result.detail = e.what();
    account("tz", run, result.status);
    return result;
  }
  result.landmark_count = landmarks.size();

  // Learned per-node data the differential tests compare against the
  // centralized builder.
  result.landmark_of.resize(n);
  result.exit_ports.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    result.landmark_of[v] = nodes[v]->dva_ == 0 ? v : nodes[v]->l_of_;
    if (nodes[v]->dva_ != 0) {
      const auto& learned = nodes[result.landmark_of[v]]->exit_learned_;
      const auto it = learned.find(v);
      if (it != learned.end()) result.exit_ports[v] = it->second;
    }
  }

  // Attempt bookkeeping + per-phase rounds for the accepted attempt.
  const std::size_t raw_attempt = nodes.empty() ? 0 : nodes[0]->attempt_;
  result.accepted_attempt = raw_attempt >= shared.max_attempts
                                ? raw_attempt - shared.max_attempts
                                : raw_attempt;
  bool degenerate = false;
  for (const auto& row : run.phase_stats) {
    if (row.label.rfind("tz.flood degenerate", 0) == 0) degenerate = true;
  }
  const std::string suffix =
      degenerate ? std::string("degenerate")
                 : "a" + std::to_string(result.accepted_attempt);
  result.tree_rounds = rounds_for(run.phase_stats, "tz.tree");
  result.flood_rounds = rounds_for(run.phase_stats, "tz.flood " + suffix);
  result.announce_rounds =
      rounds_for(run.phase_stats, "tz.announce " + suffix);
  result.register_rounds = rounds_for(run.phase_stats, "tz.register");
  result.audit_rounds = rounds_for(run.phase_stats, "tz.audit");
  account("tz", run, result.status);
  return result;
}

}  // namespace optrt::net
