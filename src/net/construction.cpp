#include "net/construction.hpp"

#include <algorithm>

#include "bitio/codes.hpp"
#include "graph/algorithms.hpp"

namespace optrt::net {

ConstructionResult distributed_compact_construction(
    const graph::Graph& g, const schemes::CompactNodeOptions& options) {
  const std::size_t n = g.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));

  ConstructionResult result;
  result.node_tables.resize(n);

  // Round 1: every node v sends its neighbour list over every incident
  // edge. We account for the traffic and materialize, per receiver, the
  // local 2-hop view the messages add up to.
  for (graph::NodeId v = 0; v < n; ++v) {
    const std::size_t d = g.degree(v);
    result.messages += d;
    result.message_bits +=
        static_cast<std::uint64_t>(d) * d * id_width;  // d messages × d ids
  }

  for (graph::NodeId u = 0; u < n; ++u) {
    // u's local view after the exchange: its own edges plus every edge
    // {v, w} reported by a neighbour v. (Edges between two neighbours are
    // reported twice; insert once.)
    graph::Graph view(n);
    for (graph::NodeId v : g.neighbors(u)) view.add_edge(u, v);
    for (graph::NodeId v : g.neighbors(u)) {
      for (graph::NodeId w : g.neighbors(v)) {
        if (w != u && !view.has_edge(v, w)) view.add_edge(v, w);
      }
    }
    // The Theorem 1 builder only inspects edges incident to u and to u's
    // neighbours — all present in the view — so this is bit-identical to
    // the centralized construction.
    result.node_tables[u] =
        schemes::build_compact_node(view, u, options).bits;
  }
  return result;
}

TzConstructionResult distributed_tz_construction(
    const graph::Graph& g, const schemes::TzOptions& options) {
  const std::size_t n = g.node_count();
  const unsigned id_width = bitio::ceil_log2(std::max<std::size_t>(n, 2));

  TzConstructionResult result;
  // The protocol converges to the centralized fixed point; build it first
  // (this also rejects disconnected graphs the way the protocol would —
  // a landmark flood that never reaches some node).
  result.scheme = std::make_unique<schemes::TzScheme>(g, options);
  const auto dist = graph::DistanceCache::global().get(g);
  const auto& landmarks = result.scheme->landmarks();
  result.landmark_count = landmarks.size();

  // Phase 1: every node flips its seeded Bernoulli coin locally — one
  // round, no traffic.
  result.rounds = 1;

  // Phase 2: each landmark floods its id over every directed edge; node v
  // hears landmark l at round d(l, v) and learns d(v, A) plus its port
  // toward every landmark. The phase lasts the largest landmark
  // eccentricity.
  std::size_t flood_rounds = 0;
  for (const graph::NodeId l : landmarks) {
    for (graph::NodeId v = 0; v < n; ++v) {
      flood_rounds = std::max<std::size_t>(flood_rounds, dist->at(l, v));
    }
  }
  const std::size_t directed_edges = 2 * g.edge_count();
  result.rounds += flood_rounds;
  result.messages += landmarks.size() * directed_edges;
  result.message_bits += static_cast<std::uint64_t>(landmarks.size()) *
                         directed_edges * id_width;

  // Phase 3: each node v announces (v, d(v, A)) through its strict ball
  // { x : d(v, x) < d(v, A) } — exactly the nodes whose cluster gains v.
  // Nodes within the ball's interior forward over all incident edges; the
  // phase lasts the largest handoff radius.
  const unsigned dist_width =
      bitio::ceil_log2(std::max<std::size_t>(flood_rounds + 2, 2));
  std::size_t announce_rounds = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    const std::size_t radius = dist->at(v, result.scheme->landmark_of(v));
    if (radius == 0) continue;  // landmarks announce nothing
    announce_rounds = std::max<std::size_t>(announce_rounds, radius);
    std::size_t sent = 0;
    for (graph::NodeId x = 0; x < n; ++x) {
      if (dist->at(v, x) < radius) sent += g.degree(x);
    }
    result.messages += sent;
    result.message_bits +=
        static_cast<std::uint64_t>(sent) * (id_width + dist_width);
  }
  result.rounds += announce_rounds;
  return result;
}

}  // namespace optrt::net
