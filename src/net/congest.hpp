// CONGEST-style protocol runtime: per-node state machines driven by
// synchronous rounds over the graph's real links.
//
// The simulator (net/simulator.hpp) moves *traffic* through an already
// built scheme; this engine moves *protocol state* — it is the runtime on
// which the routing tables themselves are assembled in-network
// (net/construction.hpp, after Elkin-Neiman, "On Efficient Distributed
// Construction of Near Optimal Routing Schemes"). The model is the
// classic synchronous CONGEST model over the paper's model II networks:
//
//   · Every node runs the same ProtocolNode state machine, knowing only
//     n, its own id, and its sorted incident port list (model II grants
//     neighbour ids for free).
//   · Time advances in global rounds. A message sent in round r over port
//     p is delivered at the port-p neighbour in round r + 1, together
//     with every other message that arrives that round.
//   · Links are the graph's real edges in CsrGraph port order; the seeded
//     FaultPlan machinery (net/faults.hpp) replays against the engine's
//     round clock, so construction can run on a faulty network: fault
//     events at time t apply before the round-t deliveries, and a message
//     crossing a down link is silently lost (the send is still charged).
//   · When no messages are in flight the engine declares *quiescence* and
//     pulses every node's on_phase_end — the distributed analogue of the
//     known-bound phase padding the CONGEST literature uses to separate
//     protocol stages. Nodes open the next phase by sending; the run ends
//     when a pulse produces no node that wants to continue.
//
// Determinism contract (the congest-labelled tests enforce it at 1/2/8
// threads): node activations run on a core::ThreadPool but outboxes merge
// in ascending node order, inboxes preserve (sender, port) order, and all
// accounting is integer sums — every RunStats field and every byte of
// protocol state is bit-identical for any `threads` value.
//
// Accounting: `rounds` counts rounds in which at least one message was in
// flight (pulses are free — they stand in for locally-counted phase
// bounds and carry no traffic), `messages` counts point-to-point sends
// (dropped ones included: the sender paid for them), and `message_bits`
// sums the per-message charged payload widths declared by the protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "net/faults.hpp"

namespace optrt::net::congest {

using graph::NodeId;
using graph::PortId;

/// One CONGEST message. `bits` is the *charged* payload width — protocols
/// declare what a real encoding would cost (e.g. an id flood charges
/// ⌈log₂ n⌉ even though `words` also carries a hop counter derivable from
/// the round number); the accounting tests pin these charges to the
/// closed forms documented in net/construction.hpp.
struct Message {
  std::uint16_t type = 0;
  std::uint32_t bits = 0;
  std::vector<std::uint32_t> words;
};

/// A delivered message, tagged with the arrival port at the receiver.
struct Received {
  PortId port = 0;
  Message msg;
};

class Engine;

/// Per-activation view a node gets of itself and its links. Valid only
/// for the duration of the on_start/on_round/on_phase_end call.
class Context {
 public:
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t node_count() const noexcept;
  [[nodiscard]] std::size_t degree() const noexcept;
  /// Neighbour reached over port p (ports are sorted: port i = i-th least
  /// neighbour id, matching graph::PortAssignment::sorted).
  [[nodiscard]] NodeId neighbor(PortId p) const;
  /// Whether the port-p link is currently up (reflects every fault event
  /// applied so far; nodes use this for the audit-phase liveness checks).
  [[nodiscard]] bool port_up(PortId p) const;

  /// Queues m for delivery over port p next round.
  void send(PortId p, Message m);
  /// Queues one copy of m per incident port.
  void send_all(const Message& m);
  /// Names the current phase in the engine's per-phase stats breakdown
  /// (all nodes of a well-formed protocol pass the same label).
  void label_phase(std::string label);

 private:
  friend class Engine;
  Context(const Engine* eng, NodeId id, std::vector<struct Flight>* outbox,
          std::string* label)
      : eng_(eng), id_(id), outbox_(outbox), label_(label) {}

  const Engine* eng_;
  NodeId id_;
  std::vector<struct Flight>* outbox_;
  std::string* label_;
};

/// A node's protocol state machine. The engine owns the schedule; the
/// node owns its state and may touch nothing but its Context (nodes run
/// concurrently — sharing mutable state across nodes breaks both the
/// model and the thread-determinism contract).
class ProtocolNode {
 public:
  virtual ~ProtocolNode() = default;
  /// Round 0: initial sends.
  virtual void on_start(Context&) {}
  /// Called whenever the node receives at least one message.
  virtual void on_round(Context&, std::span<const Received> inbox) = 0;
  /// Called at quiescence. Return true to keep the protocol running
  /// (typically opening the next phase with fresh sends); the run ends at
  /// the first pulse where every node returns false.
  virtual bool on_phase_end(Context&) { return false; }
};

/// Why a run ended.
enum class RunStatus : std::uint8_t {
  kOk,          ///< every node declined to continue at a pulse
  kRoundLimit,  ///< max_rounds exhausted — the protocol stalled
  kPhaseLimit,  ///< max_phases exhausted — a pulse loop never converged
};
[[nodiscard]] const char* to_string(RunStatus status) noexcept;

/// Traffic breakdown of one phase (quiescence to quiescence).
struct PhaseStats {
  std::string label;
  std::size_t rounds = 0;
  std::size_t messages = 0;
  std::uint64_t message_bits = 0;
  std::size_t dropped = 0;
};

struct RunStats {
  RunStatus status = RunStatus::kOk;
  std::size_t rounds = 0;    ///< rounds with messages in flight
  std::size_t phases = 0;    ///< quiescence pulses taken
  std::size_t messages = 0;  ///< point-to-point sends (dropped included)
  std::size_t dropped = 0;   ///< sends lost to down links
  std::uint64_t message_bits = 0;
  std::vector<PhaseStats> phase_stats;
};

struct EngineOptions {
  /// ThreadPool width for node activations (0 = core::default_threads();
  /// results are bit-identical for every value).
  std::size_t threads = 0;
  /// Round budget; 0 = 64·n + 256. Exceeding it is a typed failure
  /// (kRoundLimit), never a hang.
  std::size_t max_rounds = 0;
  /// Pulse budget; 0 = 8·n + 512.
  std::size_t max_phases = 0;
};

/// The synchronous scheduler. Construct over a graph, optionally schedule
/// fault plans, then run() a vector of per-node state machines.
class Engine {
 public:
  explicit Engine(const graph::Graph& g, EngineOptions options = {});

  /// Adds a plan's events to the replay schedule (times are engine
  /// rounds; events at time t apply before the round-t deliveries).
  void schedule(const FaultPlan& plan);

  /// Runs nodes[v] as node v until quiescent completion or a budget
  /// limit. `nodes` must have exactly node_count() entries.
  RunStats run(std::span<ProtocolNode* const> nodes);

  [[nodiscard]] const graph::CsrGraph& csr() const noexcept { return csr_; }

  /// True while any scheduled fault is still unrepaired (useful after
  /// run(): tables audited on a changed topology are suspect).
  [[nodiscard]] bool topology_degraded() const noexcept {
    return !failed_links_.empty() || failed_node_count_ > 0;
  }

 private:
  friend class Context;

  [[nodiscard]] bool link_usable(NodeId u, NodeId v) const;
  void apply_faults(std::uint64_t now);

  graph::CsrGraph csr_;
  EngineOptions options_;
  std::vector<FaultEvent> events_;  // stable-sorted by time
  std::size_t next_event_ = 0;
  std::unordered_set<std::uint64_t> failed_links_;  // key min·n + max
  std::vector<std::uint8_t> node_down_;
  std::size_t failed_node_count_ = 0;
};

}  // namespace optrt::net::congest
