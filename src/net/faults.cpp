#include "net/faults.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "core/parallel.hpp"

namespace optrt::net {

namespace {

/// Appends fail events for `edges` at opt.fail_time, plus one repair per
/// edge at fail_time + repair_after when repairs are requested. Fails come
/// before repairs at equal times by insertion order, so repair_after == 0
/// stays "permanent" by convention rather than a same-instant no-op.
FaultPlan plan_from_edges(const std::vector<std::pair<NodeId, NodeId>>& edges,
                          const FaultOptions& opt) {
  FaultPlan plan;
  for (const auto& [u, v] : edges) {
    plan.add({opt.fail_time, FaultKind::kLinkFail, u, v});
  }
  if (opt.repair_after > 0) {
    for (const auto& [u, v] : edges) {
      plan.add({opt.fail_time + opt.repair_after, FaultKind::kLinkRepair, u,
                v});
    }
  }
  return plan;
}

}  // namespace

std::size_t FaultPlan::fail_count() const noexcept {
  std::size_t count = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kLinkFail || e.kind == FaultKind::kNodeFail) {
      ++count;
    }
  }
  return count;
}

std::uint64_t FaultPlan::fingerprint() const noexcept {
  std::uint64_t h = core::mix64(0x0f4a17e5u ^ events_.size());
  for (const FaultEvent& e : events_) {
    h = core::mix64(h ^ e.time);
    h = core::mix64(h ^ (static_cast<std::uint64_t>(e.kind) << 62) ^
                    (static_cast<std::uint64_t>(e.u) << 31) ^ e.v);
  }
  return h;
}

std::vector<std::pair<NodeId, NodeId>> edge_list(const graph::Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

FaultPlan uniform_link_faults(const graph::Graph& g, std::size_t count,
                              const FaultOptions& opt) {
  std::vector<std::pair<NodeId, NodeId>> edges = edge_list(g);
  graph::Rng rng(core::mix64(opt.seed));
  std::shuffle(edges.begin(), edges.end(), rng);
  edges.resize(std::min(count, edges.size()));
  return plan_from_edges(edges, opt);
}

FaultPlan targeted_link_faults(const graph::Graph& g, std::size_t count,
                               const FaultOptions& opt) {
  std::vector<std::pair<NodeId, NodeId>> edges = edge_list(g);
  std::stable_sort(edges.begin(), edges.end(),
                   [&g](const auto& a, const auto& b) {
                     const std::size_t da = g.degree(a.first) + g.degree(a.second);
                     const std::size_t db = g.degree(b.first) + g.degree(b.second);
                     if (da != db) return da > db;
                     return a < b;
                   });
  edges.resize(std::min(count, edges.size()));
  return plan_from_edges(edges, opt);
}

FaultPlan partition_link_faults(const graph::Graph& g, std::size_t count,
                                const FaultOptions& opt) {
  const std::size_t n = g.node_count();
  graph::Rng rng(core::mix64(opt.seed));
  // Seeded random bisection: shuffle the node ids, first half is S.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<bool> in_s(n, false);
  for (std::size_t i = 0; i < n / 2; ++i) in_s[order[i]] = true;

  std::vector<std::pair<NodeId, NodeId>> edges = edge_list(g);
  std::shuffle(edges.begin(), edges.end(), rng);
  std::stable_partition(edges.begin(), edges.end(), [&in_s](const auto& e) {
    return in_s[e.first] != in_s[e.second];  // cut edges first
  });
  edges.resize(std::min(count, edges.size()));
  return plan_from_edges(edges, opt);
}

FaultPlan uniform_node_faults(const graph::Graph& g, std::size_t count,
                              const FaultOptions& opt) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  std::vector<NodeId> picked;
  picked.reserve(std::min(count, n));
  graph::Rng rng(core::mix64(opt.seed));
  std::sample(nodes.begin(), nodes.end(), std::back_inserter(picked),
              std::min(count, n), rng);
  FaultPlan plan;
  for (NodeId u : picked) plan.add({opt.fail_time, FaultKind::kNodeFail, u, u});
  if (opt.repair_after > 0) {
    for (NodeId u : picked) {
      plan.add({opt.fail_time + opt.repair_after, FaultKind::kNodeRepair, u, u});
    }
  }
  return plan;
}

FaultPlan make_fault_plan(const graph::Graph& g, FaultModel model,
                          std::size_t count, const FaultOptions& opt) {
  switch (model) {
    case FaultModel::kUniform:
      return uniform_link_faults(g, count, opt);
    case FaultModel::kTargeted:
      return targeted_link_faults(g, count, opt);
    case FaultModel::kPartition:
      return partition_link_faults(g, count, opt);
    case FaultModel::kNodes:
      return uniform_node_faults(g, count, opt);
  }
  return {};
}

const char* to_string(FaultModel model) noexcept {
  switch (model) {
    case FaultModel::kUniform:
      return "uniform";
    case FaultModel::kTargeted:
      return "targeted";
    case FaultModel::kPartition:
      return "partition";
    case FaultModel::kNodes:
      return "nodes";
  }
  return "?";
}

std::optional<FaultModel> parse_fault_model(std::string_view name) noexcept {
  if (name == "uniform") return FaultModel::kUniform;
  if (name == "targeted") return FaultModel::kTargeted;
  if (name == "partition") return FaultModel::kPartition;
  if (name == "nodes") return FaultModel::kNodes;
  return std::nullopt;
}

}  // namespace optrt::net
