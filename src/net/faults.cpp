#include "net/faults.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "core/parallel.hpp"

namespace optrt::net {

namespace {

/// Appends fail events for `edges` at opt.fail_time, plus one repair per
/// edge at fail_time + repair_after when repairs are requested. Fails come
/// before repairs at equal times by insertion order, so repair_after == 0
/// stays "permanent" by convention rather than a same-instant no-op.
FaultPlan plan_from_edges(const std::vector<std::pair<NodeId, NodeId>>& edges,
                          const FaultOptions& opt) {
  FaultPlan plan;
  for (const auto& [u, v] : edges) {
    plan.add({opt.fail_time, FaultKind::kLinkFail, u, v});
  }
  if (opt.repair_after > 0) {
    for (const auto& [u, v] : edges) {
      plan.add({opt.fail_time + opt.repair_after, FaultKind::kLinkRepair, u,
                v});
    }
  }
  return plan;
}

}  // namespace

std::size_t FaultPlan::fail_count() const noexcept {
  std::size_t count = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kLinkFail || e.kind == FaultKind::kNodeFail) {
      ++count;
    }
  }
  return count;
}

std::uint64_t FaultPlan::fingerprint() const noexcept {
  std::uint64_t h = core::mix64(0x0f4a17e5u ^ events_.size());
  for (const FaultEvent& e : events_) {
    h = core::mix64(h ^ e.time);
    h = core::mix64(h ^ (static_cast<std::uint64_t>(e.kind) << 62) ^
                    (static_cast<std::uint64_t>(e.u) << 31) ^ e.v);
  }
  return h;
}

std::vector<std::pair<NodeId, NodeId>> edge_list(const graph::Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

FaultPlan uniform_link_faults(const graph::Graph& g, std::size_t count,
                              const FaultOptions& opt) {
  std::vector<std::pair<NodeId, NodeId>> edges = edge_list(g);
  graph::Rng rng(core::mix64(opt.seed));
  std::shuffle(edges.begin(), edges.end(), rng);
  edges.resize(std::min(count, edges.size()));
  return plan_from_edges(edges, opt);
}

FaultPlan targeted_link_faults(const graph::Graph& g, std::size_t count,
                               const FaultOptions& opt) {
  std::vector<std::pair<NodeId, NodeId>> edges = edge_list(g);
  std::stable_sort(edges.begin(), edges.end(),
                   [&g](const auto& a, const auto& b) {
                     const std::size_t da = g.degree(a.first) + g.degree(a.second);
                     const std::size_t db = g.degree(b.first) + g.degree(b.second);
                     if (da != db) return da > db;
                     return a < b;
                   });
  edges.resize(std::min(count, edges.size()));
  return plan_from_edges(edges, opt);
}

FaultPlan partition_link_faults(const graph::Graph& g, std::size_t count,
                                const FaultOptions& opt) {
  const std::size_t n = g.node_count();
  graph::Rng rng(core::mix64(opt.seed));
  // Seeded random bisection: shuffle the node ids, first half is S.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<bool> in_s(n, false);
  for (std::size_t i = 0; i < n / 2; ++i) in_s[order[i]] = true;

  std::vector<std::pair<NodeId, NodeId>> edges = edge_list(g);
  std::shuffle(edges.begin(), edges.end(), rng);
  std::stable_partition(edges.begin(), edges.end(), [&in_s](const auto& e) {
    return in_s[e.first] != in_s[e.second];  // cut edges first
  });
  edges.resize(std::min(count, edges.size()));
  return plan_from_edges(edges, opt);
}

FaultPlan uniform_node_faults(const graph::Graph& g, std::size_t count,
                              const FaultOptions& opt) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  std::vector<NodeId> picked;
  picked.reserve(std::min(count, n));
  graph::Rng rng(core::mix64(opt.seed));
  std::sample(nodes.begin(), nodes.end(), std::back_inserter(picked),
              std::min(count, n), rng);
  FaultPlan plan;
  for (NodeId u : picked) plan.add({opt.fail_time, FaultKind::kNodeFail, u, u});
  if (opt.repair_after > 0) {
    for (NodeId u : picked) {
      plan.add({opt.fail_time + opt.repair_after, FaultKind::kNodeRepair, u, u});
    }
  }
  return plan;
}

FaultPlan make_fault_plan(const graph::Graph& g, FaultModel model,
                          std::size_t count, const FaultOptions& opt) {
  switch (model) {
    case FaultModel::kUniform:
      return uniform_link_faults(g, count, opt);
    case FaultModel::kTargeted:
      return targeted_link_faults(g, count, opt);
    case FaultModel::kPartition:
      return partition_link_faults(g, count, opt);
    case FaultModel::kNodes:
      return uniform_node_faults(g, count, opt);
  }
  return {};
}

const char* to_string(FaultModel model) noexcept {
  switch (model) {
    case FaultModel::kUniform:
      return "uniform";
    case FaultModel::kTargeted:
      return "targeted";
    case FaultModel::kPartition:
      return "partition";
    case FaultModel::kNodes:
      return "nodes";
  }
  return "?";
}

std::optional<FaultModel> parse_fault_model(std::string_view name) noexcept {
  if (name == "uniform") return FaultModel::kUniform;
  if (name == "targeted") return FaultModel::kTargeted;
  if (name == "partition") return FaultModel::kPartition;
  if (name == "nodes") return FaultModel::kNodes;
  return std::nullopt;
}

LiveTopology::LiveTopology(const graph::Graph& base)
    : base_(&base),
      node_failed_(base.node_count(), false),
      edges_(edge_list(base)) {
  link_failed_.assign(edges_.size(), false);
}

std::ptrdiff_t LiveTopology::edge_rank(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(),
                                   std::make_pair(u, v));
  if (it == edges_.end() || *it != std::make_pair(u, v)) return -1;
  return it - edges_.begin();
}

bool LiveTopology::node_up(NodeId u) const {
  return u < node_failed_.size() && !node_failed_[u];
}

bool LiveTopology::link_live(NodeId u, NodeId v) const {
  const std::ptrdiff_t rank = edge_rank(u, v);
  return rank >= 0 && !link_failed_[static_cast<std::size_t>(rank)] &&
         node_up(u) && node_up(v);
}

std::size_t LiveTopology::down_link_count() const {
  std::size_t down = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (!link_live(edges_[i].first, edges_[i].second)) ++down;
  }
  return down;
}

graph::Graph LiveTopology::live_graph() const {
  graph::Graph g(base_->node_count());
  for (const auto& [u, v] : edges_) {
    if (link_live(u, v)) g.add_edge(u, v);
  }
  return g;
}

std::vector<model::TopologyEvent> LiveTopology::apply(const FaultEvent& event) {
  std::vector<model::TopologyEvent> deltas;
  switch (event.kind) {
    case FaultKind::kLinkFail: {
      const std::ptrdiff_t rank = edge_rank(event.u, event.v);
      // Non-edges and already-failed links are deterministic no-ops.
      if (rank < 0 || link_failed_[static_cast<std::size_t>(rank)]) break;
      const bool was_live = link_live(event.u, event.v);
      link_failed_[static_cast<std::size_t>(rank)] = true;
      if (was_live) {
        deltas.push_back({std::min(event.u, event.v),
                          std::max(event.u, event.v), false});
      }
      break;
    }
    case FaultKind::kLinkRepair: {
      const std::ptrdiff_t rank = edge_rank(event.u, event.v);
      // Repairing a never-failed (or non-existent) link is a no-op.
      if (rank < 0 || !link_failed_[static_cast<std::size_t>(rank)]) break;
      link_failed_[static_cast<std::size_t>(rank)] = false;
      if (link_live(event.u, event.v)) {
        deltas.push_back({std::min(event.u, event.v),
                          std::max(event.u, event.v), true});
      }
      break;
    }
    case FaultKind::kNodeFail: {
      if (event.u >= node_failed_.size() || node_failed_[event.u]) break;
      // Collect the links that are live now and die with the node, in
      // increasing neighbour order (adjacency lists are sorted).
      for (NodeId v : base_->neighbors(event.u)) {
        if (link_live(event.u, v)) {
          deltas.push_back({std::min(event.u, v), std::max(event.u, v),
                            false});
        }
      }
      node_failed_[event.u] = true;
      break;
    }
    case FaultKind::kNodeRepair: {
      if (event.u >= node_failed_.size() || !node_failed_[event.u]) break;
      node_failed_[event.u] = false;
      for (NodeId v : base_->neighbors(event.u)) {
        if (link_live(event.u, v)) {
          deltas.push_back({std::min(event.u, v), std::max(event.u, v),
                            true});
        }
      }
      break;
    }
  }
  return deltas;
}

}  // namespace optrt::net
