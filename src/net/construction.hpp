// Distributed construction of routing tables, running as real CONGEST
// protocols on net/congest.hpp (after Elkin-Neiman, "On Efficient
// Distributed Construction of Near Optimal Routing Schemes"): every table
// bit below is assembled locally at its node from received messages only,
// then stitched into the existing RoutingScheme types and certified with
// verify_scheme / verify_scheme_stretch. The congest-labelled tests hold
// the fault-free protocols bit-identical to the centralized builders and
// pin the traffic accounting to the closed forms documented here.
//
// Three protocols:
//
//   · distributed_compact_construction — Theorem 1 compact tables. One
//     synchronous round: every node sends its neighbour list over every
//     incident edge (model II grants the lists themselves for free),
//     after which each node holds its exact 2-hop view — everything the
//     Theorem 1 builder consumes — and builds its table locally.
//       rounds = 1, messages = 2|E|, bits = Σ_v d(v)² · ⌈log₂ n⌉.
//
//   · distributed_tz_construction — genuine per-node Thorup-Zwick k = 2
//     labels/tables. Phases (W = ⌈log₂(n+1)⌉, I = ⌈log₂ n⌉):
//       tree      BFS tree from node 0, a claim round, and a
//                 convergecast/broadcast of Σd(v) (the degree tilt needs
//                 the average degree); 3·ecc(0) + 2 rounds,
//                 2|E| + 3(n−1) messages, 2|E|·W + 4(n−1)·W bits.
//       election  each node replays the shared-seed coin stream locally
//                 (draw a·n + v of mt19937_64(seed) against
//                 p_v = min(1, √(ln n / n) · d(v)/avg)) — no traffic.
//       flood     every landmark BFS-floods its id; each node learns
//                 d(v, l), d(v, A), and its landmark ports (least parent
//                 on ties); max_l ecc(l) + 1 rounds (the +1 drains the
//                 frontier's duplicate forwards), |A|·2|E| messages of I
//                 bits.
//       announce  every non-landmark v floods (v, d(v, A)) through its
//                 strict ball {x : d(v, x) < d(v, A)}; max_v d(v, A)
//                 rounds, Σ_v Σ_{x : d(v,x)<d(v,A)} d(x) messages of
//                 I + W bits.
//       veto      any node whose cluster exceeds the 4√(n ln n) cap
//                 floods its size; a clean pass accepts the attempt, a
//                 veto resamples (the engine replays the centralized
//                 best-attempt/degenerate-fallback rules locally).
//       register  each v floods a registration up the shortest-path DAG
//                 toward l(v) (forwarding to every BFS parent), so l(v)
//                 hears from exactly its shortest-path successors toward
//                 v and learns the label exit port (least id); max_v
//                 d(v, l(v)) rounds, 2·I bits per message.
//       audit     one round: neighbours exchange landmark-distance
//                 vectors and cluster entries; Lipschitz (|Δd| ≤ 1),
//                 completeness, and port-liveness violations become
//                 typed failures. 2|E| messages,
//                 Σ_u d(u)·(2W + |A|·(I+W) + (|C(u)|+[u∉A])·(I+2W)) bits.
//
//   · distributed_full_table_construction — the oracle protocol for
//     small n: all n BFS floods run simultaneously, every node records
//     (distance, least parent port) per source and writes the full-table
//     rows locally; diameter + 1 rounds, n·2|E| messages of I bits, plus
//     an audit round of 2|E| messages and Σ_u d(u)·(W + n·(I+W)) bits.
//
// Fault behaviour: pass a seeded FaultPlan through ProtocolOptions and
// the protocols run on the degraded network. Each run either converges
// to tables the audit phase accepts (transient faults: repaired links,
// re-merged floods) or reports a typed, deterministic ConstructStatus —
// never a crash, never a hang (the engine's round budget converts stalls
// into kStalled). Message loss is charged to the sender; `dropped`
// reports it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/graph.hpp"
#include "net/congest.hpp"
#include "net/faults.hpp"
#include "schemes/compact_node.hpp"
#include "schemes/tz.hpp"

namespace optrt::net {

/// Why a distributed build did not produce certified tables. Ordered by
/// severity; when nodes disagree the report keeps the worst.
enum class ConstructStatus : std::uint8_t {
  kOk = 0,
  kInapplicable,     ///< construction precondition fails on the topology
  kIncompleteInfo,   ///< a node ended without inputs its table needs
  kInconsistent,     ///< the audit phase found disagreeing neighbour state
  kTopologyChanged,  ///< a link was still down at table-audit time
  kInvalidTables,    ///< stitched tables failed scheme validation
  kStalled,          ///< engine round/phase budget exhausted
};
[[nodiscard]] const char* to_string(ConstructStatus status) noexcept;

/// Runtime knobs shared by the three protocols.
struct ProtocolOptions {
  /// Optional fault schedule replayed against the engine's round clock
  /// (null = fault-free network).
  const FaultPlan* faults = nullptr;
  /// Engine thread count (0 = default); results are bit-identical for
  /// every value.
  std::size_t threads = 0;
  /// Engine round budget (0 = 64·n + 256).
  std::size_t max_rounds = 0;
};

struct ConstructionResult {
  /// Per-node serialized Theorem 1 tables (bit-identical to
  /// schemes::build_compact_node on the full graph).
  std::vector<bitio::BitVector> node_tables;
  ConstructStatus status = ConstructStatus::kOk;
  std::string detail;
  /// Synchronous rounds used (always 1: neighbour-list exchange).
  std::size_t rounds = 0;
  /// Point-to-point messages sent (one per directed edge).
  std::size_t messages = 0;
  /// Total payload bits: Σ_v d(v)² · ⌈log₂ n⌉.
  std::uint64_t message_bits = 0;
  /// Messages lost to down links (0 on a fault-free network).
  std::size_t dropped = 0;
  std::vector<congest::PhaseStats> phase_stats;
};

/// Runs the one-round neighbour-exchange protocol and builds every node's
/// compact table from its local 2-hop view only. On a fault-free network
/// throws schemes::SchemeInapplicable where the centralized construction
/// would (some node's cover incomplete); with faults scheduled the same
/// condition — and any dropped neighbour list — becomes a typed status.
[[nodiscard]] ConstructionResult distributed_compact_construction(
    const graph::Graph& g, const schemes::CompactNodeOptions& options = {},
    const ProtocolOptions& protocol = {});

struct TzConstructionResult {
  /// The stitched scheme (null unless status == kOk): per-node bits
  /// assembled in-network, validated by the TzScheme deserialization
  /// constructor. Bit-identical to a centralized schemes::TzScheme build
  /// with the same options on a fault-free network.
  std::unique_ptr<schemes::TzScheme> scheme;
  std::size_t landmark_count = 0;
  ConstructStatus status = ConstructStatus::kOk;
  std::string detail;
  /// Aggregate traffic across every phase (rejected attempts included).
  std::size_t rounds = 0;
  std::size_t messages = 0;
  std::uint64_t message_bits = 0;
  std::size_t dropped = 0;
  /// 0-based index of the accepted election attempt; matches the
  /// centralized resample loop.
  std::size_t accepted_attempt = 0;
  /// Per-phase round counts for the accepted attempt (the property tests
  /// pin these to the eccentricity/handoff-radius forms above).
  std::size_t tree_rounds = 0;
  std::size_t flood_rounds = 0;
  std::size_t announce_rounds = 0;
  std::size_t register_rounds = 0;
  std::size_t audit_rounds = 0;
  /// Nearest landmark as learned in-network by each node.
  std::vector<graph::NodeId> landmark_of;
  /// Label exit port per destination v, as learned at l(v) from the
  /// registration flood (0 for landmarks themselves).
  std::vector<graph::PortId> exit_ports;
  std::vector<congest::PhaseStats> phase_stats;
};

/// Elects a Thorup-Zwick landmark set in-network and assembles every
/// node's k = 2 labels/tables from received messages only (phases above).
/// Throws schemes::SchemeInapplicable on disconnected graphs (mirroring
/// the centralized constructor's precondition).
[[nodiscard]] TzConstructionResult distributed_tz_construction(
    const graph::Graph& g, const schemes::TzOptions& options = {},
    const ProtocolOptions& protocol = {});

struct FullTableConstructionResult {
  /// Per-node full-table rows (bit-identical to
  /// schemes::FullTableScheme::standard on the full graph).
  std::vector<bitio::BitVector> node_tables;
  ConstructStatus status = ConstructStatus::kOk;
  std::string detail;
  std::size_t rounds = 0;
  std::size_t messages = 0;
  std::uint64_t message_bits = 0;
  std::size_t dropped = 0;
  std::vector<congest::PhaseStats> phase_stats;
};

/// Runs all n BFS floods simultaneously and writes every node's
/// full-table row locally — the always-applicable oracle protocol (the
/// in-network analogue of FullTableScheme::standard, intended for small
/// n: traffic is n·2|E| messages).
[[nodiscard]] FullTableConstructionResult distributed_full_table_construction(
    const graph::Graph& g, const ProtocolOptions& protocol = {});

}  // namespace optrt::net
