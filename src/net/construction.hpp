// Distributed construction of the Theorem 1 routing tables.
//
// The paper assumes a central strategy generates the scheme; on a real
// diameter-2 network the same tables can be built *in-network* in one
// synchronous round: every node sends its neighbour list to each
// neighbour (model II grants the lists themselves for free), after which
// each node knows its full 2-hop neighbourhood — exactly the information
// the Theorem 1 construction consumes (the Lemma 3 cover only inspects
// edges incident to u and to u's neighbours).
//
// The protocol produces bit-identical tables to the centralized builder
// (asserted in tests) and reports its communication cost: 2|E| messages,
// Σ_v d(v)² · ⌈log n⌉ payload bits.
#pragma once

#include <cstdint>
#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/graph.hpp"
#include "schemes/compact_node.hpp"

namespace optrt::net {

struct ConstructionResult {
  /// Per-node serialized Theorem 1 tables (bit-identical to
  /// schemes::build_compact_node on the full graph).
  std::vector<bitio::BitVector> node_tables;
  /// Synchronous rounds used (always 1: neighbour-list exchange).
  std::size_t rounds = 1;
  /// Point-to-point messages sent (one per directed edge).
  std::size_t messages = 0;
  /// Total payload bits: Σ_v d(v)² · ⌈log₂ n⌉.
  std::uint64_t message_bits = 0;
};

/// Runs the one-round neighbour-exchange protocol and builds every node's
/// compact table from its local 2-hop view only. Throws
/// schemes::SchemeInapplicable where the centralized construction would
/// (some node's cover incomplete).
[[nodiscard]] ConstructionResult distributed_compact_construction(
    const graph::Graph& g, const schemes::CompactNodeOptions& options = {});

}  // namespace optrt::net
