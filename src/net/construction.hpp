// Distributed construction of the Theorem 1 routing tables.
//
// The paper assumes a central strategy generates the scheme; on a real
// diameter-2 network the same tables can be built *in-network* in one
// synchronous round: every node sends its neighbour list to each
// neighbour (model II grants the lists themselves for free), after which
// each node knows its full 2-hop neighbourhood — exactly the information
// the Theorem 1 construction consumes (the Lemma 3 cover only inspects
// edges incident to u and to u's neighbours).
//
// The protocol produces bit-identical tables to the centralized builder
// (asserted in tests) and reports its communication cost: 2|E| messages,
// Σ_v d(v)² · ⌈log n⌉ payload bits.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bitio/bit_vector.hpp"
#include "graph/graph.hpp"
#include "schemes/compact_node.hpp"
#include "schemes/tz.hpp"

namespace optrt::net {

struct ConstructionResult {
  /// Per-node serialized Theorem 1 tables (bit-identical to
  /// schemes::build_compact_node on the full graph).
  std::vector<bitio::BitVector> node_tables;
  /// Synchronous rounds used (always 1: neighbour-list exchange).
  std::size_t rounds = 1;
  /// Point-to-point messages sent (one per directed edge).
  std::size_t messages = 0;
  /// Total payload bits: Σ_v d(v)² · ⌈log₂ n⌉.
  std::uint64_t message_bits = 0;
};

/// Runs the one-round neighbour-exchange protocol and builds every node's
/// compact table from its local 2-hop view only. Throws
/// schemes::SchemeInapplicable where the centralized construction would
/// (some node's cover incomplete).
[[nodiscard]] ConstructionResult distributed_compact_construction(
    const graph::Graph& g, const schemes::CompactNodeOptions& options = {});

/// Cost report for electing a Thorup-Zwick landmark set in-network.
struct TzConstructionResult {
  /// The scheme the protocol converges to (bit-identical to a centralized
  /// schemes::TzScheme build with the same options).
  std::unique_ptr<schemes::TzScheme> scheme;
  std::size_t landmark_count = 0;
  /// Synchronous rounds: 1 local coin-flip round, then the landmark floods
  /// (bounded by the largest landmark eccentricity) and the cluster
  /// announcements (bounded by the largest handoff radius) run back to
  /// back.
  std::size_t rounds = 0;
  /// Point-to-point messages: every landmark floods the whole network
  /// (2|E| directed messages each); every node v then floods (v, d(v, A))
  /// through its strict ball { x : d(v, x) < d(v, A) }.
  std::size_t messages = 0;
  /// Total payload bits across both flood phases.
  std::uint64_t message_bits = 0;
};

/// Simulates the communication cost of building a TZ landmark scheme
/// in-network: local Bernoulli coin flips elect A, each landmark's BFS
/// flood gives every node d(v, A) and its landmark ports, and each node's
/// bounded announcement flood populates the clusters. The tables
/// themselves come from the centralized builder (the protocol converges
/// to the same fixed point); only the cost model is distributed. Throws
/// schemes::SchemeInapplicable on disconnected graphs.
[[nodiscard]] TzConstructionResult distributed_tz_construction(
    const graph::Graph& g, const schemes::TzOptions& options = {});

}  // namespace optrt::net
