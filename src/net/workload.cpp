#include "net/workload.hpp"

#include <algorithm>
#include <numeric>
#include <random>

namespace optrt::net {

std::vector<TrafficPair> all_pairs(std::size_t n) {
  std::vector<TrafficPair> pairs;
  pairs.reserve(n * (n - 1));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) pairs.emplace_back(u, v);
    }
  }
  return pairs;
}

std::vector<TrafficPair> uniform_random(std::size_t n, std::size_t count,
                                        graph::Rng& rng) {
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(n - 1));
  std::vector<TrafficPair> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const NodeId u = pick(rng);
    const NodeId v = pick(rng);
    if (u != v) pairs.emplace_back(u, v);
  }
  return pairs;
}

std::vector<TrafficPair> hotspot(std::size_t n, NodeId hot) {
  std::vector<TrafficPair> pairs;
  pairs.reserve(n - 1);
  for (NodeId u = 0; u < n; ++u) {
    if (u != hot) pairs.emplace_back(u, hot);
  }
  return pairs;
}

std::vector<TrafficPair> permutation_traffic(std::size_t n, graph::Rng& rng) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  // Displace fixpoints by a cyclic swap with the successor.
  for (NodeId i = 0; i < n; ++i) {
    if (perm[i] == i) std::swap(perm[i], perm[(i + 1) % n]);
  }
  std::vector<TrafficPair> pairs;
  pairs.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    if (perm[i] != i) pairs.emplace_back(i, perm[i]);
  }
  return pairs;
}

}  // namespace optrt::net
