// Deterministic fault injection for the routing simulator.
//
// §1 motivates full-information schemes (Theorem 10's n³/4 bits) by their
// ability to route around failed links; this module makes that scenario a
// first-class, reproducible experiment input. A FaultPlan is a seeded,
// timed schedule of link/node fail and repair events; generators cover the
// failure models the compact-routing literature measures degradation
// under: uniform link failures, targeted (high-degree) attacks, and
// partition-biased cuts. Every generator derives all randomness from its
// seed, so the same seed yields a bit-identical plan on every run, thread
// count, and platform — the same contract as PR 1's SplitMix64 sweep
// points.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "model/repairable.hpp"

namespace optrt::net {

using graph::NodeId;

enum class FaultKind : std::uint8_t {
  kLinkFail,
  kLinkRepair,
  kNodeFail,   ///< all links incident to the node go down
  kNodeRepair,
};

/// One timed topology change. For node events `v` is unused (== u).
struct FaultEvent {
  std::uint64_t time = 0;
  FaultKind kind = FaultKind::kLinkFail;
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) noexcept =
      default;
};

/// An ordered schedule of fault events. Events at equal times apply in
/// insertion order (so a fail followed by a repair of the same link is a
/// no-op), which Simulator::schedule preserves via a stable sort.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events)
      : events_(std::move(events)) {}

  void add(FaultEvent e) { events_.push_back(e); }

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Number of fail (link or node) events in the plan.
  [[nodiscard]] std::size_t fail_count() const noexcept;

  /// Order-sensitive 64-bit hash of the full event sequence; the
  /// determinism tests compare plans across runs through this.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  friend bool operator==(const FaultPlan&, const FaultPlan&) noexcept =
      default;

 private:
  std::vector<FaultEvent> events_;
};

/// Knobs shared by all plan generators.
struct FaultOptions {
  std::uint64_t seed = 1;
  std::uint64_t fail_time = 0;     ///< simulation time the failures strike
  std::uint64_t repair_after = 0;  ///< 0 = permanent; else each fault is
                                   ///< repaired at fail_time + repair_after
};

/// The undirected edge list of `g` in lexicographic (u < v) order — the
/// canonical population every link-fault generator samples from (bounded
/// and duplicate-free by construction, unlike rejection sampling of node
/// pairs).
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edge_list(
    const graph::Graph& g);

/// Uniform link failures: a seeded shuffle of the edge list, failed set =
/// its first `count` edges. Plans for the same seed are prefix-nested in
/// `count`, which makes "delivery is monotone in failure count" a
/// well-posed property. `count` is clamped to |E|.
[[nodiscard]] FaultPlan uniform_link_faults(const graph::Graph& g,
                                            std::size_t count,
                                            const FaultOptions& opt = {});

/// Targeted attack: fails the `count` edges with the largest endpoint
/// degree sum (lexicographic tie-break) — the "hub-directed" adversary of
/// the Internet-like-graph resilience literature. Deterministic for every
/// seed (the seed only stamps the plan's derived repair schedule).
[[nodiscard]] FaultPlan targeted_link_faults(const graph::Graph& g,
                                             std::size_t count,
                                             const FaultOptions& opt = {});

/// Partition-biased failures: a seeded random bisection (S, V∖S); cut
/// edges are failed first (in seeded-shuffle order), then non-cut edges —
/// the generator that stresses connectivity hardest per failed link.
[[nodiscard]] FaultPlan partition_link_faults(const graph::Graph& g,
                                              std::size_t count,
                                              const FaultOptions& opt = {});

/// Uniform node failures: `count` distinct nodes drawn via std::sample
/// from {0..n−1} (clamped to n).
[[nodiscard]] FaultPlan uniform_node_faults(const graph::Graph& g,
                                            std::size_t count,
                                            const FaultOptions& opt = {});

/// Generator selector, for CLI/bench plumbing.
enum class FaultModel : std::uint8_t {
  kUniform,
  kTargeted,
  kPartition,
  kNodes,
};

[[nodiscard]] FaultPlan make_fault_plan(const graph::Graph& g,
                                        FaultModel model, std::size_t count,
                                        const FaultOptions& opt = {});

[[nodiscard]] const char* to_string(FaultModel model) noexcept;
[[nodiscard]] std::optional<FaultModel> parse_fault_model(
    std::string_view name) noexcept;

/// Link-level view of a graph under a stream of fault events: the base
/// graph minus explicitly failed links and all links incident to failed
/// nodes. apply() folds one FaultEvent into the state and returns the
/// *effective* link-liveness deltas — exactly the model::TopologyEvents a
/// RepairableScheme consumes.
///
/// Edge cases are deterministic no-ops (pinned in faults_test.cpp):
/// repairing a never-failed link, failing an already-failed link (or
/// node), failing a non-edge, and duplicate fail/repair at the same tick
/// all leave the state unchanged and emit no deltas. A link failed both
/// explicitly and through a node failure stays down until *both* causes
/// are repaired, and the delta is emitted only when liveness actually
/// flips.
class LiveTopology {
 public:
  explicit LiveTopology(const graph::Graph& base);

  /// Folds one event in; returns the effective link deltas, each
  /// lexicographic (u < v), in increasing edge order for node events.
  std::vector<model::TopologyEvent> apply(const FaultEvent& event);

  /// True iff {u, v} is a base edge, not explicitly failed, and both
  /// endpoints are up.
  [[nodiscard]] bool link_live(NodeId u, NodeId v) const;
  [[nodiscard]] bool node_up(NodeId u) const;

  /// Base edges currently not live.
  [[nodiscard]] std::size_t down_link_count() const;

  /// Materializes the current live graph (base minus failures).
  [[nodiscard]] graph::Graph live_graph() const;

  [[nodiscard]] const graph::Graph& base() const noexcept { return *base_; }

 private:
  const graph::Graph* base_;
  std::vector<bool> link_failed_;  // indexed by rank in edge_list(base)
  std::vector<bool> node_failed_;
  // edge {u<v} → rank in the lexicographic edge list, for O(log m) lookup.
  [[nodiscard]] std::ptrdiff_t edge_rank(NodeId u, NodeId v) const;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // sorted lexicographic
};

}  // namespace optrt::net
