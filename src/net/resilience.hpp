// Resilience policies for schemes that are *not* full-information.
//
// A full-information scheme (Theorem 10) reroutes by construction: its
// routing function names every shortest-path port, so the carrier just
// masks the down ones. Single-path schemes (Theorems 1–5) name exactly one
// port per destination and drop on a down link. This layer gives them the
// recovery behaviours real routers bolt on:
//
//   kRetry              bounded retry with exponential backoff — waits for
//                       a repair instead of dropping;
//   kDeflect            forward out an alternate up port (the scheme's own
//                       port enumeration when it exposes one, else the
//                       carrier's model-II sorted neighbour view);
//   kSequentialFallback switch the message to Theorem 5's sequential-search
//                       probing with down ports masked — zero extra stored
//                       bits, header state only.
//
// The layer talks to the carrier through a callback seam (LinkUpFn), not a
// fixed failed-link set, so the same engine works under any evolving
// FaultPlan the simulator replays.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

#include "graph/graph.hpp"
#include "model/scheme.hpp"

namespace optrt::net {

using graph::NodeId;

enum class ResiliencePolicy : std::uint8_t {
  kNone,
  kRetry,
  kDeflect,
  kSequentialFallback,
};

[[nodiscard]] const char* to_string(ResiliencePolicy policy) noexcept;
[[nodiscard]] std::optional<ResiliencePolicy> parse_resilience_policy(
    std::string_view name) noexcept;

struct ResilienceConfig {
  ResiliencePolicy policy = ResiliencePolicy::kNone;
  /// kRetry: attempts before giving up; attempt k waits
  /// max(1, backoff_base << k) time units.
  std::uint32_t max_retries = 4;
  std::uint64_t backoff_base = 2;
};

/// The seam between the resilience layer and its carrier: the carrier
/// supplies the live (time-varying) link state; the layer never sees the
/// failed-link set itself.
using LinkUpFn = std::function<bool(NodeId, NodeId)>;

/// What to do with a message whose primary next hop is unusable.
struct ResilienceDecision {
  enum class Action : std::uint8_t {
    kDrop,        ///< no recovery possible under the policy
    kForward,     ///< send to `next` now
    kRetryLater,  ///< re-present the message after `delay`
  };
  Action action = Action::kDrop;
  NodeId next = 0;
  std::uint64_t delay = 0;
  bool deflected = false;         ///< kForward via an alternate port
  bool entered_fallback = false;  ///< kForward via sequential-search mode
};

/// Policy engine for one (graph, scheme) pair. Stateless per message — all
/// per-message state lives in the carrier's record and MessageHeader, so
/// one engine serves any number of concurrent messages.
class ResilienceEngine {
 public:
  ResilienceEngine(const graph::Graph& g, const model::RoutingScheme& scheme,
                   ResilienceConfig config);

  /// Decides for a message blocked at `at` (primary hop down or absent).
  /// `retries` is the message's retry count so far; `in_fallback` is true
  /// once the message switched to sequential-search mode.
  [[nodiscard]] ResilienceDecision on_blocked(NodeId at, NodeId destination,
                                              model::MessageHeader& header,
                                              std::uint32_t retries,
                                              bool in_fallback,
                                              const LinkUpFn& link_up) const;

  /// Next hop for a message in sequential-search fallback mode: Theorem 5's
  /// probe walk with down ports masked. Returns nullopt when the probe
  /// space is exhausted (message undeliverable under the policy).
  [[nodiscard]] std::optional<NodeId> fallback_hop(
      NodeId at, NodeId destination, model::MessageHeader& header,
      const LinkUpFn& link_up) const;

  [[nodiscard]] const ResilienceConfig& config() const noexcept {
    return config_;
  }

 private:
  /// First usable deflection target at `at`: the scheme's port enumeration
  /// when exposed, else the sorted neighbour list; prefers ports other
  /// than the arrival link to damp ping-pong loops.
  [[nodiscard]] std::optional<NodeId> deflect(NodeId at, NodeId came_from,
                                              const LinkUpFn& link_up) const;

  const graph::Graph* g_;
  const model::RoutingScheme* scheme_;
  ResilienceConfig config_;
};

}  // namespace optrt::net
