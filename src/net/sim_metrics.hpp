// The one canonical JSON rendering of SimulationStats, shared by
// `optrt_cli simulate`, bench_failures, and anything else that prints a
// per-run stats row. Before this helper every caller hand-rolled the same
// dozen fields with subtly different names and precision; now the schema
// lives here once and tests/instrumentation_test.cpp pins it.
#pragma once

#include "net/simulator.hpp"
#include "obs/json.hpp"

namespace optrt::net {

/// Appends the canonical stats block to an object under construction:
///   sent, delivered, dropped, delivery_rate, mean_hops, mean_stretch,
///   total_hops, makespan, max_link_load, retries, deflections, fallbacks
/// (exact key order — regression-pinned). The caller owns the enclosing
/// begin_object()/end_object().
void write_stats_fields(obs::JsonWriter& w, const SimulationStats& stats);

/// The stats block as a standalone JSON object.
[[nodiscard]] std::string stats_json(const SimulationStats& stats);

}  // namespace optrt::net
