#include "net/resilience.hpp"

#include <algorithm>
#include <span>

#include "schemes/sequential_search.hpp"

namespace optrt::net {

const char* to_string(ResiliencePolicy policy) noexcept {
  switch (policy) {
    case ResiliencePolicy::kNone:
      return "none";
    case ResiliencePolicy::kRetry:
      return "retry";
    case ResiliencePolicy::kDeflect:
      return "deflect";
    case ResiliencePolicy::kSequentialFallback:
      return "fallback";
  }
  return "?";
}

std::optional<ResiliencePolicy> parse_resilience_policy(
    std::string_view name) noexcept {
  if (name == "none") return ResiliencePolicy::kNone;
  if (name == "retry") return ResiliencePolicy::kRetry;
  if (name == "deflect") return ResiliencePolicy::kDeflect;
  if (name == "fallback") return ResiliencePolicy::kSequentialFallback;
  return std::nullopt;
}

ResilienceEngine::ResilienceEngine(const graph::Graph& g,
                                   const model::RoutingScheme& scheme,
                                   ResilienceConfig config)
    : g_(&g), scheme_(&scheme), config_(config) {}

ResilienceDecision ResilienceEngine::on_blocked(NodeId at, NodeId destination,
                                                model::MessageHeader& header,
                                                std::uint32_t retries,
                                                bool in_fallback,
                                                const LinkUpFn& link_up) const {
  ResilienceDecision decision;  // default: drop
  switch (config_.policy) {
    case ResiliencePolicy::kNone:
      return decision;
    case ResiliencePolicy::kRetry: {
      if (retries >= config_.max_retries) return decision;
      decision.action = ResilienceDecision::Action::kRetryLater;
      decision.delay =
          std::max<std::uint64_t>(1, config_.backoff_base << retries);
      return decision;
    }
    case ResiliencePolicy::kDeflect: {
      const std::optional<NodeId> alt = deflect(at, header.came_from, link_up);
      if (!alt.has_value()) return decision;
      decision.action = ResilienceDecision::Action::kForward;
      decision.next = *alt;
      decision.deflected = true;
      return decision;
    }
    case ResiliencePolicy::kSequentialFallback: {
      if (in_fallback) return decision;  // probe space already exhausted
      // Restart the message as a fresh sequential-search source here; the
      // primary scheme's header scratch is dead state from now on.
      header.phase = schemes::SequentialSearchScheme::kAtSource;
      header.probe_index = 0;
      const std::optional<NodeId> hop =
          fallback_hop(at, destination, header, link_up);
      if (!hop.has_value()) return decision;
      decision.action = ResilienceDecision::Action::kForward;
      decision.next = *hop;
      decision.entered_fallback = true;
      return decision;
    }
  }
  return decision;
}

std::optional<NodeId> ResilienceEngine::fallback_hop(
    NodeId at, NodeId destination, model::MessageHeader& header,
    const LinkUpFn& link_up) const {
  // Theorem 5's constant routing function with down ports masked: deliver
  // directly over an up link, otherwise probe the least *reachable*
  // neighbours in order, bouncing unsuccessful probes back over the
  // arrival link. Same header protocol (phase + probe_index) as
  // schemes::SequentialSearchScheme.
  using SS = schemes::SequentialSearchScheme;
  if (g_->has_edge(at, destination) && link_up(at, destination)) {
    header.phase = SS::kAtSource;
    return destination;
  }
  const auto nbrs = g_->neighbors(at);
  const auto launch_from = [&](std::size_t start) -> std::optional<NodeId> {
    for (std::size_t i = start; i < nbrs.size(); ++i) {
      if (link_up(at, nbrs[i])) {
        header.phase = SS::kProbing;
        header.probe_index = static_cast<std::uint32_t>(i);
        return nbrs[i];
      }
    }
    return std::nullopt;
  };
  switch (header.phase) {
    case SS::kAtSource:
      return launch_from(0);
    case SS::kProbing:
      // A probe arrived and the destination is not deliverable from here:
      // bounce it back — unless the arrival link died under the probe.
      if (header.came_from != static_cast<NodeId>(-1) &&
          link_up(at, header.came_from)) {
        header.phase = SS::kReturning;
        return header.came_from;
      }
      return std::nullopt;
    case SS::kReturning:
      return launch_from(static_cast<std::size_t>(header.probe_index) + 1);
    default:
      return std::nullopt;
  }
}

std::optional<NodeId> ResilienceEngine::deflect(NodeId at, NodeId came_from,
                                                const LinkUpFn& link_up) const {
  const std::vector<NodeId> enumerated = scheme_->port_enumeration(at);
  const auto nbrs = g_->neighbors(at);
  const auto candidates =
      enumerated.empty()
          ? std::span<const NodeId>(nbrs)
          : std::span<const NodeId>(enumerated);
  // Prefer an up port that is not the arrival link (damps two-node
  // ping-pong); accept bouncing back only as the last resort.
  std::optional<NodeId> back;
  for (NodeId c : candidates) {
    if (!link_up(at, c)) continue;
    if (c == came_from) {
      back = c;
      continue;
    }
    return c;
  }
  return back;
}

}  // namespace optrt::net
