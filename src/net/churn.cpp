#include "net/churn.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

#include "core/parallel.hpp"
#include "graph/algorithms.hpp"
#include "obs/metrics.hpp"
#include "schemes/repair.hpp"

namespace optrt::net {

namespace {

/// Fail-preference permutation over `edges` for the link models — the
/// same orders the PR-2 one-shot generators use, re-derived here so a
/// churn plan's first fails match the corresponding FaultPlan's.
std::vector<std::size_t> fail_preference(const graph::Graph& g,
                                         const std::vector<std::pair<NodeId, NodeId>>& edges,
                                         const ChurnOptions& opt) {
  std::vector<std::size_t> pref(edges.size());
  std::iota(pref.begin(), pref.end(), std::size_t{0});
  graph::Rng rng(core::mix64(opt.seed ^ 0x9a3c5e71u));
  switch (opt.model) {
    case FaultModel::kUniform:
    case FaultModel::kNodes:
      std::shuffle(pref.begin(), pref.end(), rng);
      break;
    case FaultModel::kTargeted:
      std::stable_sort(pref.begin(), pref.end(),
                       [&](std::size_t a, std::size_t b) {
                         const std::size_t da =
                             g.degree(edges[a].first) + g.degree(edges[a].second);
                         const std::size_t db =
                             g.degree(edges[b].first) + g.degree(edges[b].second);
                         if (da != db) return da > db;
                         return edges[a] < edges[b];
                       });
      break;
    case FaultModel::kPartition: {
      const std::size_t n = g.node_count();
      std::vector<NodeId> order(n);
      std::iota(order.begin(), order.end(), NodeId{0});
      std::shuffle(order.begin(), order.end(), rng);
      std::vector<bool> in_s(n, false);
      for (std::size_t i = 0; i < n / 2; ++i) in_s[order[i]] = true;
      std::shuffle(pref.begin(), pref.end(), rng);
      std::stable_partition(pref.begin(), pref.end(), [&](std::size_t e) {
        return in_s[edges[e].first] != in_s[edges[e].second];
      });
      break;
    }
  }
  return pref;
}

/// The live graph with edge `skip` additionally removed (SIZE_MAX = none).
graph::Graph live_minus(const std::vector<std::pair<NodeId, NodeId>>& edges,
                        const std::vector<bool>& down, std::size_t n,
                        std::size_t skip) {
  graph::Graph g(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!down[i] && i != skip) g.add_edge(edges[i].first, edges[i].second);
  }
  return g;
}

/// Merges a slice into the running totals: sums, except the high-water
/// fields (makespan, max_link_load) which take the maximum.
void accumulate(SimulationStats& into, const SimulationStats& slice) {
  into.sent += slice.sent;
  into.delivered += slice.delivered;
  into.dropped += slice.dropped;
  into.total_hops += slice.total_hops;
  into.makespan = std::max(into.makespan, slice.makespan);
  into.max_link_load = std::max(into.max_link_load, slice.max_link_load);
  into.total_retries += slice.total_retries;
  into.deflections += slice.deflections;
  into.fallback_messages += slice.fallback_messages;
  into.shortest_hops += slice.shortest_hops;
}

}  // namespace

std::string ChurnOptions::name() const {
  return std::string(to_string(model)) + ":" + std::to_string(events) + "," +
         std::to_string(mean_gap) + "," + std::to_string(quiesce_every);
}

ChurnOptions ChurnOptions::parse(const std::string& spec) {
  const auto bad = [&spec]() -> ChurnOptions {
    throw std::invalid_argument(
        "ChurnOptions::parse: bad spec '" + spec +
        "' (want <model>[:<events>[,<gap>[,<quiesce>]]] with model = "
        "uniform | targeted | partition | nodes)");
  };
  ChurnOptions opt;
  const auto colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  const auto model = parse_fault_model(head);
  if (!model) return bad();
  opt.model = *model;
  if (colon == std::string::npos) return opt;
  std::string rest = spec.substr(colon + 1);
  // events[,gap[,quiesce]] — all positive integers.
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (true) {
    const auto comma = rest.find(',', pos);
    parts.push_back(rest.substr(pos, comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (parts.empty() || parts.size() > 3) return bad();
  try {
    std::size_t used = 0;
    opt.events = std::stoul(parts[0], &used);
    if (used != parts[0].size() || opt.events == 0) return bad();
    if (parts.size() > 1) {
      opt.mean_gap = std::stoul(parts[1], &used);
      if (used != parts[1].size() || opt.mean_gap == 0) return bad();
    }
    if (parts.size() > 2) {
      opt.quiesce_every = std::stoul(parts[2], &used);
      if (used != parts[2].size() || opt.quiesce_every == 0) return bad();
    }
  } catch (const std::logic_error&) {
    return bad();
  }
  return opt;
}

std::uint64_t ChurnPlan::fingerprint() const noexcept {
  std::uint64_t h =
      core::mix64(plan.fingerprint() ^ (0x5ca1ab1eULL + quiesce_after.size()));
  for (std::size_t i : quiesce_after) h = core::mix64(h ^ i);
  return h;
}

ChurnPlan make_churn_plan(const graph::Graph& g, const ChurnOptions& opt) {
  if (opt.events == 0 || opt.mean_gap == 0 || opt.quiesce_every == 0) {
    throw std::invalid_argument(
        "make_churn_plan: events, mean_gap, and quiesce_every must be > 0");
  }
  const std::size_t n = g.node_count();
  const std::vector<std::pair<NodeId, NodeId>> edges = edge_list(g);
  const std::size_t population =
      opt.model == FaultModel::kNodes ? n : edges.size();
  const std::size_t cap =
      opt.max_down == 0 ? population : std::min(opt.max_down, population);

  ChurnPlan out;
  if (population == 0) return out;

  const std::vector<std::size_t> pref = fail_preference(g, edges, opt);
  std::vector<bool> down(population, false);
  std::size_t down_count = 0;
  graph::Rng rng(core::mix64(opt.seed));
  std::uniform_int_distribution<std::uint64_t> gap(1, 2 * opt.mean_gap);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uint64_t time = opt.start_time;

  for (std::size_t i = 0; i < opt.events; ++i) {
    time += gap(rng);
    bool do_fail;
    if (down_count == 0) {
      do_fail = true;
    } else if (down_count >= cap) {
      do_fail = false;
    } else {
      do_fail = coin(rng) < opt.fail_bias;
    }

    FaultEvent event;
    event.time = time;
    if (opt.model == FaultModel::kNodes) {
      // Whole-node churn: seeded pick among the up (fail) / down (repair)
      // nodes, in id order so the draw is population-order independent.
      std::vector<NodeId> pool;
      pool.reserve(population);
      for (NodeId u = 0; u < n; ++u) {
        if (down[u] == !do_fail) pool.push_back(u);
      }
      std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
      const NodeId u = pool[pick(rng)];
      down[u] = do_fail;
      down_count += do_fail ? 1 : -1;
      event.kind = do_fail ? FaultKind::kNodeFail : FaultKind::kNodeRepair;
      event.u = u;
      event.v = u;
    } else if (do_fail) {
      // First live edge in preference order whose removal keeps the live
      // graph connected (when preservation is on); if every live edge is a
      // bridge, fall back to a repair so the plan never stalls.
      std::size_t chosen = edges.size();
      std::size_t fallback = edges.size();
      for (std::size_t e : pref) {
        if (down[e]) continue;
        if (fallback == edges.size()) fallback = e;
        if (!opt.preserve_connectivity ||
            graph::is_connected(live_minus(edges, down, n, e))) {
          chosen = e;
          break;
        }
      }
      if (chosen == edges.size() && down_count > 0) {
        do_fail = false;  // all live edges are bridges: repair instead
      } else {
        if (chosen == edges.size()) chosen = fallback;  // nothing down yet
        down[chosen] = true;
        ++down_count;
        event.kind = FaultKind::kLinkFail;
        event.u = edges[chosen].first;
        event.v = edges[chosen].second;
      }
    }
    if (opt.model != FaultModel::kNodes && !do_fail) {
      // Seeded pick among the down links, in edge-list order.
      std::vector<std::size_t> pool;
      pool.reserve(down_count);
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (down[e]) pool.push_back(e);
      }
      std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
      const std::size_t e = pool[pick(rng)];
      down[e] = false;
      --down_count;
      event.kind = FaultKind::kLinkRepair;
      event.u = edges[e].first;
      event.v = edges[e].second;
    }
    out.plan.add(event);
    if ((i + 1) % opt.quiesce_every == 0) out.quiesce_after.push_back(i);
  }
  if (out.quiesce_after.empty() || out.quiesce_after.back() != opt.events - 1) {
    out.quiesce_after.push_back(opt.events - 1);
  }
  return out;
}

const char* to_string(ChurnStatus status) noexcept {
  switch (status) {
    case ChurnStatus::kCertified:
      return "certified";
    case ChurnStatus::kUnverified:
      return "unverified";
    case ChurnStatus::kStale:
      return "stale";
    case ChurnStatus::kMismatch:
      return "mismatch";
  }
  return "?";
}

ChurnReport run_churn_session(model::RepairableScheme& rs,
                              const ChurnPlan& plan,
                              const ChurnSessionConfig& cfg) {
  // Copy the pre-churn topology: rs.topology() mutates as events apply,
  // but the simulator and LiveTopology need the stable base graph.
  const graph::Graph base = rs.topology();
  const std::size_t n = base.node_count();
  LiveTopology live(base);

  Simulator sim(base, rs.scheme(), cfg.sim);
  sim.schedule(plan.plan);

  const std::vector<FaultEvent>& events = plan.plan.events();
  const std::uint64_t horizon =
      (events.empty() ? 0 : events.back().time) + cfg.repair_lag + 1;
  if (n >= 2) {
    graph::Rng rng(core::mix64(cfg.traffic_seed ^ 0x7aff1c00ULL));
    std::uniform_int_distribution<std::uint64_t> when(0, horizon);
    std::uniform_int_distribution<NodeId> src(0, static_cast<NodeId>(n - 1));
    std::uniform_int_distribution<NodeId> off(1, static_cast<NodeId>(n - 1));
    for (std::size_t i = 0; i < cfg.messages; ++i) {
      const NodeId u = src(rng);
      const NodeId v = static_cast<NodeId>((u + off(rng)) % n);
      sim.send(u, v, when(rng));
    }
  }

  ChurnReport report;
  std::size_t quiesce_pos = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    // Everything strictly before the fault routes on converged tables…
    accumulate(report.traffic, sim.run_until(e.time));
    // …and the window [fault, activation] routes on the stale ones.
    const SimulationStats stale = sim.run_until(e.time + cfg.repair_lag + 1);
    accumulate(report.traffic, stale);
    report.stale_sent += stale.sent;

    for (const model::TopologyEvent& delta : live.apply(e)) {
      rs.apply_event(delta);
      ++report.deltas_applied;
    }
    sim.rebind(rs.scheme());
    ++report.events_applied;

    if (quiesce_pos < plan.quiesce_after.size() &&
        plan.quiesce_after[quiesce_pos] == i) {
      ++quiesce_pos;
      if (cfg.verify_at_quiesce) {
        ++report.quiesce_points;
        const schemes::RepairMatch m =
            schemes::repaired_matches_fresh(rs, cfg.threads);
        if (!m.match) {
          ++report.quiesce_mismatches;
          if (report.first_mismatch.empty()) report.first_mismatch = m.detail;
        }
      }
    }
  }
  accumulate(report.traffic, sim.run());

  report.repair = rs.stats();
  if (report.quiesce_mismatches > 0) {
    report.status = ChurnStatus::kMismatch;
  } else if (!rs.available()) {
    report.status = ChurnStatus::kStale;
  } else if (cfg.verify_at_quiesce && report.quiesce_points > 0) {
    report.status = ChurnStatus::kCertified;
  } else {
    report.status = ChurnStatus::kUnverified;
  }

  obs::counter("churn.events").inc(report.events_applied);
  obs::counter("churn.deltas").inc(report.deltas_applied);
  obs::counter("churn.noops").inc(report.repair.noops);
  obs::counter("churn.patched").inc(report.repair.patched);
  obs::counter("churn.rebuilt").inc(report.repair.rebuilt);
  obs::counter("churn.inapplicable").inc(report.repair.inapplicable);
  obs::counter("churn.tables_touched").inc(report.repair.tables_touched);
  obs::counter("churn.dist_rows_bfs").inc(report.repair.dist_rows_bfs);
  obs::counter("churn.dist_rows_patched").inc(report.repair.dist_rows_patched);
  obs::counter("churn.quiesce_checks").inc(report.quiesce_points);
  obs::counter("churn.quiesce_mismatches").inc(report.quiesce_mismatches);
  obs::counter("churn.stale_sent").inc(report.stale_sent);
  return report;
}

}  // namespace optrt::net
