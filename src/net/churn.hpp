// Live-churn sessions: seeded fail/repair event streams replayed against a
// routing simulator while a model::RepairableScheme keeps its tables
// converged (ROADMAP item 5a).
//
// A ChurnPlan layers interleaved, timed link (or node) fail/repair events
// on top of the PR-2 FaultPlan machinery: every draw comes from the plan
// seed, so the same spec yields a bit-identical plan — and, because every
// downstream consumer is deterministic, a bit-identical session report —
// on every run, platform, and thread count. Quiesce points mark event
// indices after which the differential oracle
// (schemes::repaired_matches_fresh) must certify the incrementally
// repaired scheme against a fresh centralized build.
//
// run_churn_session is the churn control loop the paper's model implies
// but never spells out: the data plane (Simulator) keeps routing on the
// old tables while the control plane (RepairableScheme) patches them;
// messages resolved between a fault and its repair's activation are the
// staleness window, reported as `stale_sent` and the churn.* metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "model/repairable.hpp"
#include "net/faults.hpp"
#include "net/simulator.hpp"

namespace optrt::net {

/// Knobs for the churn-plan generator. Spec form (CLI/bench):
/// "model[:events[,gap[,quiesce]]]" with model ∈ {uniform, targeted,
/// partition, nodes} — e.g. "uniform:32", "targeted:16,2", or
/// "partition:24,4,6".
struct ChurnOptions {
  std::uint64_t seed = 1;
  /// Fault model choosing the fail-preference order: uniform = seeded
  /// shuffle, targeted = largest degree sum first, partition = cut edges
  /// of a seeded bisection first, nodes = whole-node churn.
  FaultModel model = FaultModel::kUniform;
  std::size_t events = 32;       ///< total fail+repair events
  std::uint64_t mean_gap = 4;    ///< gaps drawn uniform from [1, 2·mean_gap]
  std::uint64_t start_time = 0;  ///< time before the first gap
  /// P(next event is a fail) when both choices are open; forced to fail
  /// when nothing is down and to repair when max_down is reached.
  double fail_bias = 0.5;
  /// Cap on simultaneously-down links (nodes for kNodes); 0 = uncapped.
  std::size_t max_down = 0;
  /// Every quiesce_every-th event (and always the last) becomes a quiesce
  /// point where the differential oracle runs.
  std::size_t quiesce_every = 8;
  /// Skip fail candidates whose removal would disconnect the live graph
  /// (link models only; node churn may disconnect — the session reports
  /// it as a typed status instead of certifying).
  bool preserve_connectivity = true;

  /// Stable spec string, e.g. "uniform:32,4,8" — parse(name()) == *this
  /// up to the fields the spec does not carry.
  [[nodiscard]] std::string name() const;

  /// Parses the spec grammar above; throws std::invalid_argument on a
  /// malformed spec (mirrors graph::TopologyFamily::parse).
  static ChurnOptions parse(const std::string& spec);
};

/// A generated churn stream: the timed event schedule plus the event
/// indices after which the repaired scheme must match a fresh build.
struct ChurnPlan {
  FaultPlan plan;
  std::vector<std::size_t> quiesce_after;  ///< sorted event indices

  /// Order-sensitive hash of the schedule and the quiesce indices; the
  /// determinism tests compare plans across runs through this.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Generates a seeded churn plan over `g`. Fail events follow the model's
/// preference order over live links (skipping disconnecting candidates
/// when preserve_connectivity is set); repair events pick uniformly among
/// the currently-down links. Every choice derives from opt.seed only.
[[nodiscard]] ChurnPlan make_churn_plan(const graph::Graph& g,
                                        const ChurnOptions& opt);

/// How a churn session ended. Anything other than kCertified is the typed
/// status the chaos layer requires: the session still ran to completion,
/// but the final tables are not oracle-certified.
enum class ChurnStatus : std::uint8_t {
  kCertified,   ///< every quiesce check passed and the scheme is live
  kUnverified,  ///< ran with verify_at_quiesce off (bench timing mode)
  kStale,       ///< checks passed but the scheme ended inapplicable:
                ///< tables are stale for the final topology (by parity,
                ///< a fresh build cannot exist either)
  kMismatch,    ///< a quiesce check diverged from the fresh build
};

[[nodiscard]] const char* to_string(ChurnStatus status) noexcept;

struct ChurnSessionConfig {
  SimulatorConfig sim;
  /// Simulation-time delay between a fault striking and its repaired
  /// tables activating; messages resolved inside the window count as
  /// stale_sent.
  std::uint64_t repair_lag = 0;
  bool verify_at_quiesce = true;
  std::size_t threads = 0;  ///< feeds the TZ oracle's route_fingerprint
  /// Background traffic: `messages` seeded (source, destination, time)
  /// triples spread over the whole session.
  std::size_t messages = 64;
  std::uint64_t traffic_seed = 1;
};

/// One churn session's merged outcome. All fields are deterministic
/// counters — bit-identical at every --threads value.
struct ChurnReport {
  SimulationStats traffic;    ///< all slices merged (sums; makespan and
                              ///< max_link_load by max)
  model::RepairStats repair;  ///< the repairable's final work accounting
  std::size_t events_applied = 0;  ///< fault events replayed
  std::size_t deltas_applied = 0;  ///< effective link deltas repaired
  std::size_t quiesce_points = 0;
  std::size_t quiesce_mismatches = 0;
  std::string first_mismatch;  ///< oracle detail of the first divergence
  std::size_t stale_sent = 0;  ///< messages resolved on stale tables
  ChurnStatus status = ChurnStatus::kUnverified;
};

/// Replays `plan` against `rs` under live traffic. Precondition: `rs` is
/// freshly built (no events applied) on the same topology the plan was
/// generated for. The loop, per event e: run the simulator through
/// e.time + repair_lag (messages in that window route on the old tables),
/// expand e into effective link deltas via LiveTopology, feed each to
/// rs.apply_event(), rebind the simulator to the repaired scheme, and at
/// quiesce indices run the differential oracle. Emits churn.* metrics.
[[nodiscard]] ChurnReport run_churn_session(model::RepairableScheme& rs,
                                            const ChurnPlan& plan,
                                            const ChurnSessionConfig& cfg = {});

}  // namespace optrt::net
