// Seeded artifact-corruption injector for the decode-hardening harness.
//
// The routing artifacts of schemes/serialization are the bits a universal
// strategy actually ships to the nodes; a hardened pipeline must treat
// them as hostile once they leave the encoder. This module generates the
// hostile inputs: given a well-formed artifact and a seed, it applies one
// of a fixed menu of corruption classes — single/multi bit flips,
// truncation, extension, section splice, zeroed header — and returns the
// damaged bit string. All randomness derives from the seed through the
// same SplitMix64 discipline as net/faults' FaultPlan generators, so
// corruption #(seed, i) is bit-identical on every run, thread count, and
// platform, and a chaos-test failure is replayable from its seed alone.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "bitio/bit_vector.hpp"

namespace optrt::net {

/// The corruption classes the chaos harness draws from. Every class keeps
/// the damaged artifact's size within [0, 2·|artifact|] bits, so decoders
/// face malformed inputs, not unbounded ones.
enum class CorruptionKind : std::uint8_t {
  kBitFlip,       ///< flip exactly one bit, anywhere
  kMultiBitFlip,  ///< flip 2–16 distinct bits
  kTruncate,      ///< drop a suffix (possibly all bits)
  kExtend,        ///< append 1–64 seeded junk bits
  kSplice,        ///< overwrite a section with seeded junk
  kZeroHeader,    ///< zero a prefix of up to 176 bits
};

inline constexpr std::size_t kCorruptionKindCount = 6;

[[nodiscard]] const char* to_string(CorruptionKind kind) noexcept;

/// One corruption draw: which class was applied and where, for replayable
/// diagnostics when a chaos test fails.
struct CorruptionReport {
  CorruptionKind kind = CorruptionKind::kBitFlip;
  std::uint64_t seed = 0;
  std::size_t begin = 0;  ///< first affected bit position
  std::size_t count = 0;  ///< number of affected / appended / dropped bits
};

/// Applies the seed-selected corruption class to a copy of `artifact`.
/// The same (artifact, seed) pair always yields the same damaged bits.
/// If `report` is non-null it receives the draw's parameters. Empty
/// artifacts only ever grow (kExtend).
[[nodiscard]] bitio::BitVector corrupt(const bitio::BitVector& artifact,
                                       std::uint64_t seed,
                                       CorruptionReport* report = nullptr);

/// Applies a specific corruption class; the seed only picks positions.
[[nodiscard]] bitio::BitVector corrupt_with(const bitio::BitVector& artifact,
                                            CorruptionKind kind,
                                            std::uint64_t seed,
                                            CorruptionReport* report = nullptr);

/// Byte-level front end for wire-frame chaos: unpacks `bytes` LSB-first
/// into a bit string, applies the seed-selected corruption class, and
/// repacks (a partial trailing byte is zero-padded). The serve chaos
/// suite drives ORTP frames through this, so the wire protocol faces
/// exactly the corruption menu the artifact decoders were hardened
/// against.
[[nodiscard]] std::vector<std::uint8_t> corrupt_bytes(
    std::span<const std::uint8_t> bytes, std::uint64_t seed,
    CorruptionReport* report = nullptr);

/// Flips exactly the payload bit `index` (frame-relative position
/// kFrameHeaderBits + index) of a framed artifact — the primitive behind
/// the "every single-bit payload flip is caught by the CRC" sweep.
[[nodiscard]] bitio::BitVector flip_bit(const bitio::BitVector& artifact,
                                        std::size_t index);

}  // namespace optrt::net
