// Traffic workload generators for the simulator.
#pragma once

#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace optrt::net {

using graph::NodeId;
using TrafficPair = std::pair<NodeId, NodeId>;

/// Every ordered pair (u, v), u != v.
[[nodiscard]] std::vector<TrafficPair> all_pairs(std::size_t n);

/// `count` uniformly random ordered pairs with distinct endpoints.
[[nodiscard]] std::vector<TrafficPair> uniform_random(std::size_t n,
                                                      std::size_t count,
                                                      graph::Rng& rng);

/// Everyone sends to one hot destination.
[[nodiscard]] std::vector<TrafficPair> hotspot(std::size_t n, NodeId hot);

/// A random permutation pattern: node i sends to π(i), π fixpoint-free
/// where possible.
[[nodiscard]] std::vector<TrafficPair> permutation_traffic(std::size_t n,
                                                           graph::Rng& rng);

}  // namespace optrt::net
