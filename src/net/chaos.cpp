#include "net/chaos.hpp"

#include <algorithm>

#include "core/parallel.hpp"

namespace optrt::net {

namespace {

/// Small seeded generator over the SplitMix64 mixer: each draw re-mixes a
/// counter, matching the stateless point_seed discipline of core/parallel.
class ChaosRng {
 public:
  explicit ChaosRng(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t next() noexcept {
    return core::point_seed(seed_, 0x9E3779B97F4A7C15ull, counter_++);
  }

  /// Uniform draw in [0, bound); bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

 private:
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

bitio::BitVector flipped(bitio::BitVector bits, std::size_t index) {
  bits.set(index, !bits.get(index));
  return bits;
}

}  // namespace

const char* to_string(CorruptionKind kind) noexcept {
  switch (kind) {
    case CorruptionKind::kBitFlip: return "bit-flip";
    case CorruptionKind::kMultiBitFlip: return "multi-bit-flip";
    case CorruptionKind::kTruncate: return "truncate";
    case CorruptionKind::kExtend: return "extend";
    case CorruptionKind::kSplice: return "splice";
    case CorruptionKind::kZeroHeader: return "zero-header";
  }
  return "unknown";
}

bitio::BitVector corrupt(const bitio::BitVector& artifact, std::uint64_t seed,
                         CorruptionReport* report) {
  ChaosRng rng(seed);
  auto kind = static_cast<CorruptionKind>(rng.below(kCorruptionKindCount));
  if (artifact.empty() && kind != CorruptionKind::kExtend) {
    kind = CorruptionKind::kExtend;
  }
  return corrupt_with(artifact, kind, core::mix64(seed ^ 0xC4A5ull), report);
}

bitio::BitVector corrupt_with(const bitio::BitVector& artifact,
                              CorruptionKind kind, std::uint64_t seed,
                              CorruptionReport* report) {
  ChaosRng rng(seed);
  CorruptionReport r;
  r.kind = kind;
  r.seed = seed;
  bitio::BitVector out = artifact;
  const std::size_t n = artifact.size();
  switch (kind) {
    case CorruptionKind::kBitFlip: {
      r.begin = n == 0 ? 0 : static_cast<std::size_t>(rng.below(n));
      r.count = n == 0 ? 0 : 1;
      if (n != 0) out = flipped(std::move(out), r.begin);
      break;
    }
    case CorruptionKind::kMultiBitFlip: {
      const std::size_t want =
          n == 0 ? 0 : static_cast<std::size_t>(2 + rng.below(15));
      std::size_t flips = 0;
      std::size_t first = n;
      for (std::size_t i = 0; i < want; ++i) {
        const auto pos = static_cast<std::size_t>(rng.below(n));
        out.set(pos, !out.get(pos));
        first = std::min(first, pos);
        ++flips;
      }
      r.begin = first == n ? 0 : first;
      r.count = flips;
      break;
    }
    case CorruptionKind::kTruncate: {
      const std::size_t keep =
          n == 0 ? 0 : static_cast<std::size_t>(rng.below(n));
      r.begin = keep;
      r.count = n - keep;
      bitio::BitVector cut;
      for (std::size_t i = 0; i < keep; ++i) cut.push_back(out.get(i));
      out = std::move(cut);
      break;
    }
    case CorruptionKind::kExtend: {
      const auto extra = static_cast<std::size_t>(1 + rng.below(64));
      r.begin = n;
      r.count = extra;
      for (std::size_t i = 0; i < extra; ++i) out.push_back(rng.next() & 1u);
      break;
    }
    case CorruptionKind::kSplice: {
      const std::size_t begin =
          n == 0 ? 0 : static_cast<std::size_t>(rng.below(n));
      const std::size_t len = std::min<std::size_t>(
          n - begin, static_cast<std::size_t>(1 + rng.below(128)));
      r.begin = begin;
      r.count = len;
      for (std::size_t i = 0; i < len; ++i) {
        out.set(begin + i, rng.next() & 1u);
      }
      break;
    }
    case CorruptionKind::kZeroHeader: {
      const std::size_t len = std::min<std::size_t>(
          n, static_cast<std::size_t>(1 + rng.below(176)));
      r.begin = 0;
      r.count = len;
      for (std::size_t i = 0; i < len; ++i) out.set(i, false);
      break;
    }
  }
  if (report != nullptr) *report = r;
  return out;
}

std::vector<std::uint8_t> corrupt_bytes(std::span<const std::uint8_t> bytes,
                                        std::uint64_t seed,
                                        CorruptionReport* report) {
  bitio::BitVector bits;
  for (const std::uint8_t byte : bytes) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      bits.push_back((byte >> bit) & 1u);
    }
  }
  const bitio::BitVector damaged = corrupt(bits, seed, report);
  std::vector<std::uint8_t> out((damaged.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < damaged.size(); ++i) {
    if (damaged.get(i)) out[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
  }
  return out;
}

bitio::BitVector flip_bit(const bitio::BitVector& artifact, std::size_t index) {
  return flipped(artifact, index);
}

}  // namespace optrt::net
