#include "net/congest.hpp"

#include <algorithm>
#include <utility>

#include "core/parallel.hpp"

namespace optrt::net::congest {

/// One queued message: sent by `from` in the previous round, to be
/// delivered to `to` at its arrival port `to_port`.
struct Flight {
  NodeId from = 0;
  NodeId to = 0;
  PortId to_port = 0;
  Message msg;
};

const char* to_string(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kRoundLimit:
      return "round-limit";
    case RunStatus::kPhaseLimit:
      return "phase-limit";
  }
  return "unknown";
}

std::size_t Context::node_count() const noexcept {
  return eng_->csr_.node_count();
}

std::size_t Context::degree() const noexcept { return eng_->csr_.degree(id_); }

NodeId Context::neighbor(PortId p) const {
  return eng_->csr_.neighbor_at(id_, p);
}

bool Context::port_up(PortId p) const {
  return eng_->link_usable(id_, neighbor(p));
}

void Context::send(PortId p, Message m) {
  const NodeId to = neighbor(p);
  const auto back = eng_->csr_.arc_index(to, id_);
  outbox_->push_back(Flight{
      id_, to, static_cast<PortId>(back - eng_->csr_.arc_begin(to)),
      std::move(m)});
}

void Context::send_all(const Message& m) {
  const auto d = degree();
  for (PortId p = 0; p < d; ++p) send(p, m);
}

void Context::label_phase(std::string label) { *label_ = std::move(label); }

Engine::Engine(const graph::Graph& g, EngineOptions options)
    : csr_(g), options_(options), node_down_(g.node_count(), 0) {
  if (options_.max_rounds == 0) {
    options_.max_rounds = 64 * g.node_count() + 256;
  }
  if (options_.max_phases == 0) {
    options_.max_phases = 8 * g.node_count() + 512;
  }
}

void Engine::schedule(const FaultPlan& plan) {
  events_.insert(events_.end(), plan.events().begin(), plan.events().end());
  // Equal-time events keep insertion order (a fail then repair of the same
  // link at one instant is a no-op) — the Simulator's contract.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  next_event_ = 0;
}

bool Engine::link_usable(NodeId u, NodeId v) const {
  if (node_down_[u] || node_down_[v]) return false;
  if (failed_links_.empty()) return true;
  const std::uint64_t n = csr_.node_count();
  const std::uint64_t a = std::min(u, v);
  const std::uint64_t b = std::max(u, v);
  return failed_links_.find(a * n + b) == failed_links_.end();
}

void Engine::apply_faults(std::uint64_t now) {
  const std::uint64_t n = csr_.node_count();
  while (next_event_ < events_.size() && events_[next_event_].time <= now) {
    const FaultEvent& e = events_[next_event_++];
    const std::uint64_t key = std::uint64_t{std::min(e.u, e.v)} * n +
                              std::uint64_t{std::max(e.u, e.v)};
    switch (e.kind) {
      case FaultKind::kLinkFail:
        failed_links_.insert(key);
        break;
      case FaultKind::kLinkRepair:
        failed_links_.erase(key);
        break;
      case FaultKind::kNodeFail:
        if (!node_down_[e.u]) ++failed_node_count_;
        node_down_[e.u] = 1;
        break;
      case FaultKind::kNodeRepair:
        if (node_down_[e.u]) --failed_node_count_;
        node_down_[e.u] = 0;
        break;
    }
  }
}

RunStats Engine::run(std::span<ProtocolNode* const> nodes) {
  const std::size_t n = csr_.node_count();
  RunStats stats;
  stats.phase_stats.emplace_back();
  core::ThreadPool pool(options_.threads);

  std::vector<Flight> flights;
  std::vector<std::vector<Received>> inbox(n);

  // Runs `body` for each listed node concurrently, then folds the
  // per-node outboxes into `flights` in list order — the only place
  // per-node results meet, and it is sequential and index-ordered, so
  // every downstream bit is independent of the thread count.
  struct Activation {
    std::vector<Flight> outbox;
    std::string label;
    bool advanced = false;
  };
  const auto activate = [&](const std::vector<NodeId>& ids, auto&& body) {
    auto acts = core::parallel_map<Activation>(
        pool, ids.size(), [&](std::size_t i) {
          Activation a;
          Context ctx(this, ids[i], &a.outbox, &a.label);
          a.advanced = body(ids[i], ctx);
          return a;
        });
    bool advanced = false;
    PhaseStats& row = stats.phase_stats.back();
    for (Activation& a : acts) {
      advanced |= a.advanced;
      if (!a.label.empty()) row.label = std::move(a.label);
      for (Flight& f : a.outbox) {
        ++stats.messages;
        ++row.messages;
        stats.message_bits += f.msg.bits;
        row.message_bits += f.msg.bits;
        flights.push_back(std::move(f));
      }
    }
    return advanced;
  };

  std::vector<NodeId> everyone(n);
  for (NodeId v = 0; v < n; ++v) everyone[v] = v;
  activate(everyone, [&](NodeId v, Context& ctx) {
    nodes[v]->on_start(ctx);
    return true;
  });

  std::vector<NodeId> receivers;
  for (;;) {
    if (flights.empty()) {
      // Quiescence: pulse every node; stop when none wants to continue.
      if (++stats.phases > options_.max_phases) {
        stats.status = RunStatus::kPhaseLimit;
        break;
      }
      if (stats.phase_stats.back().rounds != 0 ||
          stats.phase_stats.back().messages != 0) {
        stats.phase_stats.emplace_back();
      }
      const bool advanced = activate(everyone, [&](NodeId v, Context& ctx) {
        return nodes[v]->on_phase_end(ctx);
      });
      if (!advanced) {
        stats.status = RunStatus::kOk;
        break;
      }
      continue;
    }

    if (++stats.rounds > options_.max_rounds) {
      stats.status = RunStatus::kRoundLimit;
      break;
    }
    ++stats.phase_stats.back().rounds;
    apply_faults(stats.rounds);

    receivers.clear();
    for (Flight& f : flights) {
      if (!link_usable(f.from, f.to)) {
        ++stats.dropped;
        ++stats.phase_stats.back().dropped;
        continue;
      }
      if (inbox[f.to].empty()) receivers.push_back(f.to);
      inbox[f.to].push_back(Received{f.to_port, std::move(f.msg)});
    }
    flights.clear();
    std::sort(receivers.begin(), receivers.end());
    activate(receivers, [&](NodeId v, Context& ctx) {
      nodes[v]->on_round(ctx, std::span<const Received>(inbox[v]));
      inbox[v].clear();
      return true;
    });
  }

  // Drop the trailing empty row the final pulse opened.
  while (!stats.phase_stats.empty() &&
         stats.phase_stats.back().rounds == 0 &&
         stats.phase_stats.back().messages == 0 &&
         stats.phase_stats.back().label.empty()) {
    stats.phase_stats.pop_back();
  }
  return stats;
}

}  // namespace optrt::net::congest
