// Discrete-event message-passing simulator: the operational semantics of
// §1's routing model. Messages travel hop by hop; at each node the local
// routing function picks the outgoing edge; the carrier maintains the
// arrival link (`came_from`). Full-information schemes reroute around
// failed links — the exact capability §1 motivates them with; single-path
// schemes can opt into the recovery policies of net/resilience.hpp.
//
// Topology changes arrive as a timed net/faults.hpp FaultPlan replayed by
// the event loop (faults at time t apply before message hops at time t),
// so the same seeded plan degrades every scheme identically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "model/fastpath.hpp"
#include "model/scheme.hpp"
#include "net/faults.hpp"
#include "net/resilience.hpp"

namespace optrt::net {

using graph::NodeId;

struct SimulatorConfig {
  /// Per-link transit time (all links equal; the paper's networks are
  /// unweighted).
  std::uint64_t link_latency = 1;
  /// Messages exceeding this many edges are dropped (guards probe loops).
  std::size_t max_hops = 0;  ///< 0 = model::default_hop_budget(n)
  /// Store-and-forward congestion: each directed link transmits one
  /// message per link_latency window; others queue FIFO. Makes hotspot
  /// concentration visible (e.g. Theorem 4's hub under load).
  bool serialize_links = false;
  /// Recovery policy consulted when a message's primary hop is unusable.
  ResilienceConfig resilience;
  /// Accumulate pre-failure shortest-path distances of delivered messages
  /// (SimulationStats::mean_stretch); costs one cached all-pairs BFS.
  bool measure_stretch = false;
  /// Route batches of same-time deliveries through the scheme's compiled
  /// FastPath (one route_batch per timestep) instead of per-hop decode.
  /// Applies only while the scheme is stateless (stateless_next_hop())
  /// and no failures are active — otherwise each event falls back to the
  /// per-hop path — so stats, records, and link loads are bit-identical
  /// to the unbatched loop (tests/simulator_test.cpp pins this).
  bool batch_routing = false;
};

/// Outcome of one message.
struct MessageRecord {
  std::uint64_t id = 0;
  NodeId source = 0;
  NodeId destination = 0;
  bool delivered = false;
  bool dropped_on_failure = false;  ///< no usable outgoing link
  bool used_fallback = false;       ///< switched to sequential-search mode
  std::uint32_t retries = 0;
  std::uint32_t deflections = 0;
  std::size_t hops = 0;
  std::uint64_t send_time = 0;
  std::uint64_t arrival_time = 0;
};

struct SimulationStats {
  std::size_t sent = 0;  ///< messages resolved this run (delivered+dropped)
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t makespan = 0;       ///< last arrival time
  std::uint64_t max_link_load = 0;  ///< most messages over one directed link
  // Degradation metrics under faults.
  std::uint64_t total_retries = 0;      ///< retry re-presentations
  std::uint64_t deflections = 0;        ///< rerouted (alternate-port) hops
  std::size_t fallback_messages = 0;    ///< messages that entered fallback
  std::uint64_t shortest_hops = 0;      ///< Σ pre-failure d(s,t), delivered
                                        ///< (measure_stretch only)

  [[nodiscard]] double mean_hops() const noexcept {
    return delivered == 0
               ? 0.0
               : static_cast<double>(total_hops) / static_cast<double>(delivered);
  }
  /// Fraction of resolved messages delivered (1.0 when nothing was sent).
  [[nodiscard]] double delivery_rate() const noexcept {
    return sent == 0 ? 1.0
                     : static_cast<double>(delivered) /
                           static_cast<double>(sent);
  }
  /// Mean route length of delivered messages relative to the *pre-failure*
  /// shortest path — the degradation stretch. 0 unless measure_stretch.
  [[nodiscard]] double mean_stretch() const noexcept {
    return shortest_hops == 0 ? 0.0
                              : static_cast<double>(total_hops) /
                                    static_cast<double>(shortest_hops);
  }
};

/// Event-driven simulator over a fixed graph and routing scheme.
class Simulator {
 public:
  Simulator(const graph::Graph& g, const model::RoutingScheme& scheme,
            SimulatorConfig config = {});

  /// Enqueues a message; returns its id.
  std::uint64_t send(NodeId source, NodeId destination,
                     std::uint64_t at_time = 0);

  /// Appends a fault plan's events to the replay schedule. Events at equal
  /// times apply in plan order (stable), before message hops at that time.
  void schedule(const FaultPlan& plan);

  /// Marks the undirected link {u, v} down / up immediately.
  void fail_link(NodeId u, NodeId v);
  void restore_link(NodeId u, NodeId v);
  /// True iff {u, v} is usable: the link itself and both endpoints are up.
  [[nodiscard]] bool link_up(NodeId u, NodeId v) const;
  [[nodiscard]] bool node_up(NodeId u) const;

  /// Runs until all in-flight messages are delivered or dropped (any
  /// scheduled faults beyond the last message still apply).
  SimulationStats run();

  /// Runs the event loop only for events with time < `limit`, leaving
  /// later messages queued and later faults unapplied, and returns the
  /// stats of just this slice (sum slice stats for run()-equivalent
  /// totals). The churn driver interleaves run_until with table repairs:
  /// everything strictly before a repair's activation time routes on the
  /// old (stale) tables, exactly like a real control plane converging
  /// behind the data plane.
  SimulationStats run_until(std::uint64_t limit);

  /// Swaps the routing scheme mid-stream (topology fixed): re-resolves
  /// the full-information capability, rebuilds the resilience engine, and
  /// recompiles the batching fast path when configured. In-flight
  /// messages continue with the new tables on their next hop — the
  /// repaired-table activation point of a churn session.
  void rebind(const model::RoutingScheme& scheme);

  [[nodiscard]] const std::vector<MessageRecord>& records() const noexcept {
    return records_;
  }

  /// Effective configuration (sentinels resolved; e.g. max_hops == 0 →
  /// model::default_hop_budget(n)).
  [[nodiscard]] const SimulatorConfig& config() const noexcept {
    return config_;
  }

  /// Messages carried over the directed link u → v in past run() calls.
  [[nodiscard]] std::uint64_t link_load(NodeId u, NodeId v) const;

 private:
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;  // FIFO tie-break
    std::size_t record_index;
    NodeId at;
    model::MessageHeader header;

    friend bool operator>(const Event& a, const Event& b) noexcept {
      return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
    }
  };

  /// Picks the next hop at `e.at`, honouring failures for full-information
  /// schemes and fallback mode. Returns nullopt when the message is
  /// blocked (resilience policy decides its fate).
  [[nodiscard]] std::optional<NodeId> pick_next_hop(Event& e);

  /// Shared body of run() / run_until(): processes events with
  /// time < `limit`; `apply_trailing` replays leftover scheduled faults
  /// once the queue drains (full run() semantics only).
  SimulationStats run_core(std::uint64_t limit, bool apply_trailing);

  /// Applies every scheduled fault with time ≤ now.
  void apply_faults_until(std::uint64_t now);
  void apply_fault(const FaultEvent& e);

  const graph::Graph* g_;
  const model::RoutingScheme* scheme_;
  const model::FullInformationRouting* full_info_;  // non-null if capable
  SimulatorConfig config_;
  // Compiled form for batch_routing (null unless enabled and the scheme
  // is stateless). May borrow scheme_, which outlives the simulator.
  std::unique_ptr<model::FastPath> fast_;
  std::unique_ptr<ResilienceEngine> resilience_;  // non-null if policy set
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<MessageRecord> records_;
  std::vector<FaultEvent> fault_schedule_;  // stable-sorted by time on run
  std::size_t fault_pos_ = 0;
  bool fault_schedule_dirty_ = false;
  std::unordered_set<std::uint64_t> failed_links_;  // edge_index keys
  std::unordered_set<NodeId> failed_nodes_;
  // Per-directed-link state lives in flat arrays indexed by the CSR arc
  // id of u → v — the event loop does one binary search per hop instead
  // of hashing, and the arrays stay cache-resident across hops.
  graph::CsrGraph csr_;
  // serialize_links: earliest next departure per directed link.
  std::vector<std::uint64_t> link_free_at_;
  // Messages per directed link, across runs.
  std::vector<std::uint64_t> link_load_;
};

}  // namespace optrt::net
