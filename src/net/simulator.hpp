// Discrete-event message-passing simulator: the operational semantics of
// §1's routing model. Messages travel hop by hop; at each node the local
// routing function picks the outgoing edge; the carrier maintains the
// arrival link (`came_from`). Full-information schemes reroute around
// failed links — the exact capability §1 motivates them with.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"
#include "model/scheme.hpp"

namespace optrt::net {

using graph::NodeId;

struct SimulatorConfig {
  /// Per-link transit time (all links equal; the paper's networks are
  /// unweighted).
  std::uint64_t link_latency = 1;
  /// Messages exceeding this many edges are dropped (guards probe loops).
  std::size_t max_hops = 0;  ///< 0 = model::default_hop_budget(n)
  /// Store-and-forward congestion: each directed link transmits one
  /// message per link_latency window; others queue FIFO. Makes hotspot
  /// concentration visible (e.g. Theorem 4's hub under load).
  bool serialize_links = false;
};

/// Outcome of one message.
struct MessageRecord {
  std::uint64_t id = 0;
  NodeId source = 0;
  NodeId destination = 0;
  bool delivered = false;
  bool dropped_on_failure = false;  ///< no usable outgoing link
  std::size_t hops = 0;
  std::uint64_t send_time = 0;
  std::uint64_t arrival_time = 0;
};

struct SimulationStats {
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t makespan = 0;       ///< last arrival time
  std::uint64_t max_link_load = 0;  ///< most messages over one directed link

  [[nodiscard]] double mean_hops() const noexcept {
    return delivered == 0
               ? 0.0
               : static_cast<double>(total_hops) / static_cast<double>(delivered);
  }
};

/// Event-driven simulator over a fixed graph and routing scheme.
class Simulator {
 public:
  Simulator(const graph::Graph& g, const model::RoutingScheme& scheme,
            SimulatorConfig config = {});

  /// Enqueues a message; returns its id.
  std::uint64_t send(NodeId source, NodeId destination,
                     std::uint64_t at_time = 0);

  /// Marks the undirected link {u, v} down / up.
  void fail_link(NodeId u, NodeId v);
  void restore_link(NodeId u, NodeId v);
  [[nodiscard]] bool link_up(NodeId u, NodeId v) const;

  /// Runs until all in-flight messages are delivered or dropped.
  SimulationStats run();

  [[nodiscard]] const std::vector<MessageRecord>& records() const noexcept {
    return records_;
  }

  /// Messages carried over the directed link u → v in past run() calls.
  [[nodiscard]] std::uint64_t link_load(NodeId u, NodeId v) const;

 private:
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;  // FIFO tie-break
    std::size_t record_index;
    NodeId at;
    model::MessageHeader header;

    friend bool operator>(const Event& a, const Event& b) noexcept {
      return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
    }
  };

  /// Picks the next hop at `e.at`, honouring failures for full-information
  /// schemes. Returns nullopt when the message must be dropped.
  [[nodiscard]] std::optional<NodeId> pick_next_hop(Event& e);

  const graph::Graph* g_;
  const model::RoutingScheme* scheme_;
  const model::FullInformationRouting* full_info_;  // non-null if capable
  SimulatorConfig config_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<MessageRecord> records_;
  std::unordered_set<std::uint64_t> failed_links_;  // edge_index keys
  // serialize_links: earliest next departure per *directed* link.
  std::unordered_map<std::uint64_t, std::uint64_t> link_free_at_;
  // Messages per directed link (key: u·n + v), across runs.
  std::unordered_map<std::uint64_t, std::uint64_t> link_load_;
};

}  // namespace optrt::net
