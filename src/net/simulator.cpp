#include "net/simulator.hpp"

#include <stdexcept>
#include <tuple>

#include "graph/encoding.hpp"
#include "model/verifier.hpp"
#include "schemes/full_information.hpp"

namespace optrt::net {

Simulator::Simulator(const graph::Graph& g, const model::RoutingScheme& scheme,
                     SimulatorConfig config)
    : g_(&g),
      scheme_(&scheme),
      full_info_(dynamic_cast<const model::FullInformationRouting*>(&scheme)),
      config_(config) {
  if (config_.max_hops == 0) {
    config_.max_hops = model::default_hop_budget(g.node_count());
  }
}

std::uint64_t Simulator::send(NodeId source, NodeId destination,
                              std::uint64_t at_time) {
  if (source == destination) {
    throw std::invalid_argument("Simulator::send: source == destination");
  }
  MessageRecord record;
  record.id = records_.size();
  record.source = source;
  record.destination = destination;
  record.send_time = at_time;
  records_.push_back(record);
  queue_.push(Event{at_time, next_seq_++, records_.size() - 1, source, {}});
  return record.id;
}

void Simulator::fail_link(NodeId u, NodeId v) {
  failed_links_.insert(graph::edge_index(g_->node_count(), u, v));
}

void Simulator::restore_link(NodeId u, NodeId v) {
  failed_links_.erase(graph::edge_index(g_->node_count(), u, v));
}

bool Simulator::link_up(NodeId u, NodeId v) const {
  return !failed_links_.contains(graph::edge_index(g_->node_count(), u, v));
}

std::uint64_t Simulator::link_load(NodeId u, NodeId v) const {
  const auto it =
      link_load_.find(static_cast<std::uint64_t>(u) * g_->node_count() + v);
  return it == link_load_.end() ? 0 : it->second;
}

std::optional<NodeId> Simulator::pick_next_hop(Event& e) {
  const MessageRecord& record = records_[e.record_index];
  const NodeId dest_label = scheme_->label_of(record.destination);
  if (full_info_ != nullptr) {
    // Full-information rerouting: mask the down ports and take any
    // remaining shortest-path edge.
    const auto* fis =
        dynamic_cast<const schemes::FullInformationScheme*>(full_info_);
    if (fis != nullptr) {
      const auto& ports = fis->ports();
      std::vector<bool> down(ports.degree(e.at), false);
      bool any_down = false;
      for (graph::PortId p = 0; p < down.size(); ++p) {
        if (!link_up(e.at, ports.neighbor_at(e.at, p))) {
          down[p] = true;
          any_down = true;
        }
      }
      if (any_down) {
        const NodeId hop = fis->next_hop_avoiding(e.at, dest_label, down);
        if (hop == schemes::FullInformationScheme::kNoRoute) {
          return std::nullopt;
        }
        return hop;
      }
    }
  }
  const NodeId hop = scheme_->next_hop(e.at, dest_label, e.header);
  if (!link_up(e.at, hop)) return std::nullopt;
  return hop;
}

SimulationStats Simulator::run() {
  SimulationStats stats;
  while (!queue_.empty()) {
    Event e = queue_.top();
    queue_.pop();
    MessageRecord& record = records_[e.record_index];
    if (e.at == record.destination) {
      record.delivered = true;
      record.arrival_time = e.time;
      ++stats.delivered;
      stats.total_hops += record.hops;
      stats.makespan = std::max(stats.makespan, e.time);
      continue;
    }
    if (record.hops >= config_.max_hops) {
      ++stats.dropped;
      continue;
    }
    const std::optional<NodeId> hop = pick_next_hop(e);
    if (!hop.has_value()) {
      record.dropped_on_failure = true;
      ++stats.dropped;
      continue;
    }
    ++record.hops;
    e.header.came_from = e.at;
    const std::uint64_t key =
        static_cast<std::uint64_t>(e.at) * g_->node_count() + *hop;
    const std::uint64_t load = ++link_load_[key];
    stats.max_link_load = std::max(stats.max_link_load, load);
    std::uint64_t depart = e.time;
    if (config_.serialize_links) {
      std::uint64_t& free_at = link_free_at_[key];
      depart = std::max(depart, free_at);
      free_at = depart + config_.link_latency;
    }
    queue_.push(Event{depart + config_.link_latency, next_seq_++,
                      e.record_index, *hop, e.header});
  }
  return stats;
}

}  // namespace optrt::net
