#include "net/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>

#include "graph/algorithms.hpp"
#include "graph/encoding.hpp"
#include "model/verifier.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "schemes/full_information.hpp"

namespace optrt::net {

Simulator::Simulator(const graph::Graph& g, const model::RoutingScheme& scheme,
                     SimulatorConfig config)
    : g_(&g),
      scheme_(&scheme),
      full_info_(dynamic_cast<const model::FullInformationRouting*>(&scheme)),
      config_(config),
      csr_(g),
      link_free_at_(csr_.arc_count(), 0),
      link_load_(csr_.arc_count(), 0) {
  if (config_.max_hops == 0) {
    config_.max_hops = model::default_hop_budget(g.node_count());
  }
  if (config_.resilience.policy != ResiliencePolicy::kNone) {
    resilience_ =
        std::make_unique<ResilienceEngine>(g, scheme, config_.resilience);
  }
  if (config_.batch_routing && scheme.stateless_next_hop()) {
    fast_ = scheme.compile_fast();
  }
}

std::uint64_t Simulator::send(NodeId source, NodeId destination,
                              std::uint64_t at_time) {
  if (source == destination) {
    throw std::invalid_argument("Simulator::send: source == destination");
  }
  MessageRecord record;
  record.id = records_.size();
  record.source = source;
  record.destination = destination;
  record.send_time = at_time;
  records_.push_back(record);
  queue_.push(Event{at_time, next_seq_++, records_.size() - 1, source, {}});
  return record.id;
}

void Simulator::schedule(const FaultPlan& plan) {
  fault_schedule_.insert(fault_schedule_.end(), plan.events().begin(),
                         plan.events().end());
  fault_schedule_dirty_ = true;
}

void Simulator::fail_link(NodeId u, NodeId v) {
  failed_links_.insert(graph::edge_index(g_->node_count(), u, v));
}

void Simulator::restore_link(NodeId u, NodeId v) {
  failed_links_.erase(graph::edge_index(g_->node_count(), u, v));
}

bool Simulator::node_up(NodeId u) const { return !failed_nodes_.contains(u); }

bool Simulator::link_up(NodeId u, NodeId v) const {
  return node_up(u) && node_up(v) &&
         !failed_links_.contains(graph::edge_index(g_->node_count(), u, v));
}

void Simulator::apply_fault(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kLinkFail:
      fail_link(e.u, e.v);
      break;
    case FaultKind::kLinkRepair:
      restore_link(e.u, e.v);
      break;
    case FaultKind::kNodeFail:
      failed_nodes_.insert(e.u);
      break;
    case FaultKind::kNodeRepair:
      failed_nodes_.erase(e.u);
      break;
  }
}

void Simulator::apply_faults_until(std::uint64_t now) {
  while (fault_pos_ < fault_schedule_.size() &&
         fault_schedule_[fault_pos_].time <= now) {
    apply_fault(fault_schedule_[fault_pos_++]);
  }
}

std::uint64_t Simulator::link_load(NodeId u, NodeId v) const {
  const std::size_t arc = csr_.arc_index(u, v);
  return arc == graph::CsrGraph::kNoArc ? 0 : link_load_[arc];
}

std::optional<NodeId> Simulator::pick_next_hop(Event& e) {
  const MessageRecord& record = records_[e.record_index];
  const auto up = [this](NodeId a, NodeId b) { return link_up(a, b); };
  if (record.used_fallback) {
    // The message switched to sequential-search probing; the resilience
    // engine owns its routing from here on.
    return resilience_->fallback_hop(e.at, record.destination, e.header, up);
  }
  const NodeId dest_label = scheme_->label_of(record.destination);
  if (full_info_ != nullptr) {
    // Full-information rerouting: mask the down ports and take any
    // remaining shortest-path edge.
    const auto* fis =
        dynamic_cast<const schemes::FullInformationScheme*>(full_info_);
    if (fis != nullptr) {
      const auto& ports = fis->ports();
      std::vector<bool> down(ports.degree(e.at), false);
      bool any_down = false;
      for (graph::PortId p = 0; p < down.size(); ++p) {
        if (!link_up(e.at, ports.neighbor_at(e.at, p))) {
          down[p] = true;
          any_down = true;
        }
      }
      if (any_down) {
        const NodeId hop = fis->next_hop_avoiding(e.at, dest_label, down);
        if (hop == schemes::FullInformationScheme::kNoRoute) {
          return std::nullopt;
        }
        return hop;
      }
    }
  }
  const NodeId hop = scheme_->next_hop(e.at, dest_label, e.header);
  if (!link_up(e.at, hop)) return std::nullopt;
  return hop;
}

SimulationStats Simulator::run() {
  return run_core(std::numeric_limits<std::uint64_t>::max(), true);
}

SimulationStats Simulator::run_until(std::uint64_t limit) {
  return run_core(limit, false);
}

void Simulator::rebind(const model::RoutingScheme& scheme) {
  scheme_ = &scheme;
  full_info_ = dynamic_cast<const model::FullInformationRouting*>(&scheme);
  if (config_.resilience.policy != ResiliencePolicy::kNone) {
    resilience_ =
        std::make_unique<ResilienceEngine>(*g_, scheme, config_.resilience);
  }
  fast_.reset();
  if (config_.batch_routing && scheme.stateless_next_hop()) {
    fast_ = scheme.compile_fast();
  }
  obs::MetricsRegistry::global().counter("sim.rebinds").inc();
}

SimulationStats Simulator::run_core(std::uint64_t limit, bool apply_trailing) {
  SimulationStats stats;
  // The event loop is strictly sequential, so fine-grained increments are
  // as deterministic as the loop itself; all handles target the global
  // registry resolved once per run.
  obs::TraceSpan span("net.simulator.run");
  auto& reg = obs::MetricsRegistry::global();
  const obs::Counter c_hops = reg.counter("sim.hops");
  const obs::Counter c_delivered = reg.counter("sim.delivered");
  const obs::Counter c_dropped = reg.counter("sim.dropped");
  const obs::Counter c_retries = reg.counter("sim.retries");
  const obs::Counter c_deflections = reg.counter("sim.deflections");
  const obs::Counter c_fallbacks = reg.counter("sim.fallback_messages");
  const obs::Histogram h_delivered_hops =
      reg.histogram("sim.delivered_hops", obs::hop_buckets());
  const std::size_t faults_before = fault_pos_;
  std::size_t queue_peak = queue_.size();
  if (fault_schedule_dirty_) {
    // Stable: events at equal times keep their schedule() order, so a fail
    // followed by a repair of the same link is a no-op.
    std::stable_sort(
        fault_schedule_.begin() + static_cast<std::ptrdiff_t>(fault_pos_),
        fault_schedule_.end(),
        [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
    fault_schedule_dirty_ = false;
  }
  std::shared_ptr<const graph::DistanceMatrix> dist;
  if (config_.measure_stretch) {
    dist = graph::DistanceCache::global().get(*g_);
  }
  // One event's full treatment after faults were applied: delivery, hop
  // budget, routing (honouring a precomputed batched hop), resilience,
  // and the forward push. `pre` is only ever set when it provably equals
  // what pick_next_hop would return (stateless scheme, no active
  // failures), so the batched and per-hop loops are bit-identical.
  const auto process = [&](Event e, std::optional<NodeId> pre) {
    MessageRecord& record = records_[e.record_index];
    if (e.at == record.destination) {
      record.delivered = true;
      record.arrival_time = e.time;
      ++stats.delivered;
      c_delivered.inc();
      h_delivered_hops.observe(record.hops);
      stats.total_hops += record.hops;
      stats.makespan = std::max(stats.makespan, e.time);
      if (dist != nullptr) {
        stats.shortest_hops += dist->at(record.source, record.destination);
      }
      return;
    }
    if (record.hops >= config_.max_hops) {
      ++stats.dropped;
      c_dropped.inc();
      return;
    }
    std::optional<NodeId> hop = pre.has_value() ? pre : pick_next_hop(e);
    bool deflected = false;
    if (!hop.has_value() && resilience_ != nullptr) {
      const auto up = [this](NodeId a, NodeId b) { return link_up(a, b); };
      const ResilienceDecision decision = resilience_->on_blocked(
          e.at, record.destination, e.header, record.retries,
          record.used_fallback, up);
      switch (decision.action) {
        case ResilienceDecision::Action::kDrop:
          break;
        case ResilienceDecision::Action::kRetryLater:
          ++record.retries;
          ++stats.total_retries;
          c_retries.inc();
          queue_.push(Event{e.time + decision.delay, next_seq_++,
                            e.record_index, e.at, e.header});
          return;
        case ResilienceDecision::Action::kForward:
          hop = decision.next;
          if (decision.entered_fallback) {
            record.used_fallback = true;
            ++stats.fallback_messages;
            c_fallbacks.inc();
          } else {
            deflected = decision.deflected;
          }
          break;
      }
    }
    if (!hop.has_value()) {
      record.dropped_on_failure = true;
      ++stats.dropped;
      c_dropped.inc();
      return;
    }
    if (deflected) {
      ++record.deflections;
      ++stats.deflections;
      c_deflections.inc();
    }
    ++record.hops;
    c_hops.inc();
    e.header.came_from = e.at;
    const std::size_t arc = csr_.arc_index(e.at, *hop);
    if (arc == graph::CsrGraph::kNoArc) {
      throw std::logic_error(
          "Simulator: scheme returned a non-neighbour next hop");
    }
    const std::uint64_t load = ++link_load_[arc];
    stats.max_link_load = std::max(stats.max_link_load, load);
    std::uint64_t depart = e.time;
    if (config_.serialize_links) {
      std::uint64_t& free_at = link_free_at_[arc];
      depart = std::max(depart, free_at);
      free_at = depart + config_.link_latency;
    }
    queue_.push(Event{depart + config_.link_latency, next_seq_++,
                      e.record_index, *hop, e.header});
  };

  if (fast_ == nullptr) {
    while (!queue_.empty() && queue_.top().time < limit) {
      queue_peak = std::max(queue_peak, queue_.size());
      Event e = queue_.top();
      queue_.pop();
      apply_faults_until(e.time);
      process(std::move(e), std::nullopt);
    }
  } else {
    // Batched delivery: drain every event of the current timestep (they
    // pop in seq order — events pushed while processing always carry a
    // larger seq, so ordering matches the per-hop loop), answer the
    // routable ones with one route_batch, then process sequentially.
    std::vector<Event> batch;
    std::vector<model::RoutePair> pairs;
    std::vector<NodeId> hops;
    std::vector<std::ptrdiff_t> hop_of;  // batch index → pairs index or -1
    while (!queue_.empty() && queue_.top().time < limit) {
      const std::uint64_t now = queue_.top().time;
      batch.clear();
      while (!queue_.empty() && queue_.top().time == now) {
        batch.push_back(queue_.top());
        queue_.pop();
      }
      apply_faults_until(now);
      hop_of.assign(batch.size(), -1);
      // With any failure active, link_up checks and full-information
      // avoidance stop being no-ops — every event takes the per-hop path.
      if (failed_links_.empty() && failed_nodes_.empty()) {
        pairs.clear();
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const Event& e = batch[i];
          const MessageRecord& record = records_[e.record_index];
          if (e.at != record.destination && record.hops < config_.max_hops &&
              !record.used_fallback) {
            hop_of[i] = static_cast<std::ptrdiff_t>(pairs.size());
            pairs.push_back({e.at, scheme_->label_of(record.destination)});
          }
        }
        hops.resize(pairs.size());
        if (!pairs.empty()) fast_->route_batch(pairs, hops);
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        // The per-hop loop reads queue_.size() with this event still
        // queued: the (batch.size() - i) drained-but-unprocessed events
        // re-create that view.
        queue_peak =
            std::max(queue_peak, (batch.size() - i) + queue_.size());
        process(std::move(batch[i]),
                hop_of[i] >= 0
                    ? std::optional<NodeId>(hops[static_cast<std::size_t>(
                          hop_of[i])])
                    : std::nullopt);
      }
    }
  }
  // Topology changes beyond the last message still take effect, so the
  // post-run link state matches the full plan. Sliced runs leave future
  // faults pending for the next slice instead.
  if (apply_trailing && fault_pos_ < fault_schedule_.size()) {
    apply_faults_until(fault_schedule_.back().time);
  }
  stats.sent = stats.delivered + stats.dropped;
  reg.counter("sim.sent").inc(stats.sent);
  reg.counter("sim.runs").inc();
  reg.counter(std::string("sim.runs.policy.") +
              to_string(config_.resilience.policy))
      .inc();
  reg.counter("sim.fault_events").inc(fault_pos_ - faults_before);
  reg.gauge("sim.queue_peak").set(static_cast<std::int64_t>(queue_peak));
  return stats;
}

}  // namespace optrt::net
