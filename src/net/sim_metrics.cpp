#include "net/sim_metrics.hpp"

namespace optrt::net {

void write_stats_fields(obs::JsonWriter& w, const SimulationStats& stats) {
  w.key("sent").value(stats.sent);
  w.key("delivered").value(stats.delivered);
  w.key("dropped").value(stats.dropped);
  w.key("delivery_rate").value(stats.delivery_rate());
  w.key("mean_hops").value(stats.mean_hops());
  w.key("mean_stretch").value(stats.mean_stretch());
  w.key("total_hops").value(stats.total_hops);
  w.key("makespan").value(stats.makespan);
  w.key("max_link_load").value(stats.max_link_load);
  w.key("retries").value(stats.total_retries);
  w.key("deflections").value(stats.deflections);
  w.key("fallbacks").value(stats.fallback_messages);
}

std::string stats_json(const SimulationStats& stats) {
  obs::JsonWriter w;
  w.begin_object();
  write_stats_fields(w, stats);
  w.end_object();
  return w.str();
}

}  // namespace optrt::net
