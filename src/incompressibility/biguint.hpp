// Arbitrary-precision unsigned integers, sized for enumerative coding of
// graph rows: binomial coefficients C(n, k) with n ≈ 2¹¹ (≈ 2000-bit
// values). Implemented from scratch — only the operations the codecs need.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace optrt::incompress {

/// Little-endian base-2⁶⁴ unsigned integer.
class BigUint {
 public:
  BigUint() = default;
  BigUint(std::uint64_t value);  // NOLINT(google-explicit-constructor): numeric literal interop

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }

  /// Number of bits in the binary representation (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// Bit i (LSB = 0).
  [[nodiscard]] bool bit(std::size_t i) const noexcept;

  BigUint& operator+=(const BigUint& other);
  /// Precondition: *this >= other.
  BigUint& operator-=(const BigUint& other);
  /// Multiply in place by a small factor.
  BigUint& mul_small(std::uint64_t factor);
  /// Divide in place by a small divisor (must divide exactly for the
  /// binomial recurrences used here; remainder is returned).
  std::uint64_t div_small(std::uint64_t divisor);

  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }
  friend BigUint operator-(BigUint a, const BigUint& b) { return a -= b; }

  [[nodiscard]] std::strong_ordering compare(const BigUint& other) const noexcept;
  friend std::strong_ordering operator<=>(const BigUint& a, const BigUint& b) noexcept {
    return a.compare(b);
  }
  friend bool operator==(const BigUint& a, const BigUint& b) noexcept {
    return a.limbs_ == b.limbs_;
  }

  /// Approximate double value (may overflow to +inf); reporting only.
  [[nodiscard]] double to_double() const noexcept;

  /// Value as decimal string (tests / reporting).
  [[nodiscard]] std::string to_string() const;

  /// Fits in a u64?
  [[nodiscard]] bool fits_u64() const noexcept { return limbs_.size() <= 1; }
  [[nodiscard]] std::uint64_t as_u64() const noexcept {
    return limbs_.empty() ? 0 : limbs_[0];
  }

 private:
  void trim();
  std::vector<std::uint64_t> limbs_;  // empty = 0
};

/// Binomial coefficient C(n, k) computed exactly.
[[nodiscard]] BigUint binomial(std::uint64_t n, std::uint64_t k);

}  // namespace optrt::incompress
