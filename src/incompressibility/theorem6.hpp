// Theorem 6's description scheme: a shortest-path routing function F(u)
// (model II∧α) reveals, for every non-neighbour w of u, one edge {v, w}
// with v the intermediary F(u) routes through — so those |A₀| ≈ n/2 bits
// (plus u's own row) can be deleted from E(G). On random graphs E(G) is
// incompressible, forcing |F(u)| ≥ n/2 − o(n).
//
// The codec instantiates F(u) as the Theorem 1 compact node table and
// round-trips exactly; `implied_function_lower_bound` is the number of bits
// ANY routing function encoded this way must occupy on an incompressible
// graph.
#pragma once

#include <cstddef>

#include "bitio/bit_vector.hpp"
#include "graph/graph.hpp"
#include "incompressibility/lemma_codecs.hpp"
#include "schemes/compact_node.hpp"

namespace optrt::incompress {

struct Theorem6Result {
  Description description;
  std::size_t function_bits = 0;       ///< |F(u)| actually stored
  std::size_t deleted_edge_bits = 0;   ///< bits recovered from F(u) (= |A₀|)
  std::size_t overhead_bits = 0;       ///< id + row + self-delimiting costs
  /// deleted + row − overhead: any F(u) decodable by this scheme satisfies
  /// |F(u)| ≥ this on an incompressible graph (Theorem 6's n/2 − o(n)).
  [[nodiscard]] std::ptrdiff_t implied_function_lower_bound() const noexcept;
};

/// Encodes E(G) through node u's compact routing function. Throws
/// SchemeInapplicable when u lacks the Theorem 1 structure.
[[nodiscard]] Theorem6Result theorem6_encode(
    const graph::Graph& g, NodeId u,
    const schemes::CompactNodeOptions& opt = {});

/// Exact inverse.
[[nodiscard]] graph::Graph theorem6_decode(
    const bitio::BitVector& bits, std::size_t n,
    const schemes::CompactNodeOptions& opt = {});

}  // namespace optrt::incompress
