// Theorem 9 (worst case, model α): the explicit graph G_B of Figure 1.
//
// In G_B with a planted top-row permutation τ, the shortest path from any
// bottom node b to top node 2k+j runs through the unique middle partner,
// and every other path has length ≥ 4 — so any routing scheme with stretch
// < 2 must, at b, map j to that partner. Querying b's routing function for
// all k top labels therefore *recovers τ*: k! distinguishable functions,
// hence ≥ log₂ k! = k log k − O(k) bits at each of the k bottom nodes.
#pragma once

#include <vector>

#include "graph/generators.hpp"
#include "model/scheme.hpp"

namespace optrt::incompress {

/// Recovers the planted permutation from the routing behaviour of bottom
/// node `b` (< k) of a stretch-<2 scheme on lower_bound_gb_permuted(k, τ):
/// result[i] = j iff middle node k+i partners top node 2k+j.
/// Throws std::logic_error if some answer is not a middle node (i.e. the
/// scheme's stretch is ≥ 2 on this pair).
[[nodiscard]] std::vector<graph::NodeId> recover_top_permutation(
    const model::RoutingScheme& scheme, std::size_t k, graph::NodeId b = 0);

}  // namespace optrt::incompress
