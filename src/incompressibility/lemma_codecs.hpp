// The description schemes inside the proofs of Lemmas 1–3, implemented as
// exact encoder/decoder pairs over E(G).
//
// Each lemma argues: "if graph G violated structural property P, then E(G)
// could be described in fewer than n(n−1)/2 − δ(n) bits, contradicting
// randomness". We make the description effective: encode(G, witness)
// produces a bit string from which decode() reconstructs G exactly, and
// whose length realizes the proof's savings. On certified random graphs no
// witness exists; on structured graphs (chains, stars…) the codecs compress
// E(G) by exactly the advertised margin — randomness deficiency made
// visible.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>

#include "bitio/bit_vector.hpp"
#include "graph/graph.hpp"

namespace optrt::incompress {

using graph::NodeId;

/// A complete description of one graph (decodable given n) plus accounting.
struct Description {
  bitio::BitVector bits;
  std::size_t original_bits = 0;  ///< |E(G)| = n(n−1)/2

  /// Bits saved versus the standard encoding (negative = expansion).
  [[nodiscard]] std::ptrdiff_t savings() const noexcept {
    return static_cast<std::ptrdiff_t>(original_bits) -
           static_cast<std::ptrdiff_t>(bits.size());
  }
};

// --- Lemma 1: deviant degrees compress ---------------------------------------

/// Describes G by singling out node u and coding u's incidence row
/// enumeratively (index among C(n−1, d(u)) patterns). Compresses exactly
/// when d(u) deviates from (n−1)/2.
[[nodiscard]] Description lemma1_encode(const graph::Graph& g, NodeId u);
[[nodiscard]] graph::Graph lemma1_decode(const bitio::BitVector& bits,
                                         std::size_t n);

/// The node with the most deviant degree (the best Lemma 1 witness).
[[nodiscard]] NodeId most_deviant_node(const graph::Graph& g);

// --- Lemma 2: diameter > 2 compresses ----------------------------------------

/// Finds a pair at distance > 2 (including disconnected pairs), if any.
[[nodiscard]] std::optional<std::pair<NodeId, NodeId>> find_distant_pair(
    const graph::Graph& g);

/// Describes G given a witness pair (u, v) with d(u, v) > 2: every edge
/// {w, v} with w ∈ N(u) is known absent, so those d(u) bits are dropped.
[[nodiscard]] Description lemma2_encode(const graph::Graph& g, NodeId u,
                                        NodeId v);
[[nodiscard]] graph::Graph lemma2_decode(const bitio::BitVector& bits,
                                         std::size_t n);

// --- Lemma 3: an uncovered node compresses -----------------------------------

/// Finds (u, w) such that w is adjacent neither to u nor to any of the
/// first `prefix` least neighbours of u, if any such pair exists.
[[nodiscard]] std::optional<std::pair<NodeId, NodeId>> find_cover_violation(
    const graph::Graph& g, std::size_t prefix);

/// Describes G given such a witness: the `prefix`+1 bits of w's row
/// covering u and u's least `prefix` neighbours are known zero and are
/// dropped — a net gain of prefix − 2 log n bits.
[[nodiscard]] Description lemma3_encode(const graph::Graph& g, NodeId u,
                                        NodeId w, std::size_t prefix);
[[nodiscard]] graph::Graph lemma3_decode(const bitio::BitVector& bits,
                                         std::size_t n, std::size_t prefix);

}  // namespace optrt::incompress
