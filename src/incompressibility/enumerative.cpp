#include "incompressibility/enumerative.hpp"

#include <stdexcept>

#include "bitio/codes.hpp"

namespace optrt::incompress {

BigUint rank_fixed_weight(const bitio::BitVector& bits) {
  BigUint rank(0);
  std::size_t i = 0;  // index of the next one-bit (1-based in the formula)
  // Maintain C(p, i) incrementally as p advances? Positions vary; compute
  // each C(pᵢ, i) by the multiplicative formula — k terms of k factors is
  // fine at these sizes.
  for (std::size_t p = 0; p < bits.size(); ++p) {
    if (bits.get(p)) {
      ++i;
      rank += binomial(p, i);
    }
  }
  return rank;
}

bitio::BitVector unrank_fixed_weight(std::size_t n, std::size_t k,
                                     const BigUint& rank) {
  if (!(rank < binomial(n, k))) {
    throw std::out_of_range("unrank_fixed_weight: rank out of range");
  }
  bitio::BitVector bits(n);
  BigUint remaining = rank;
  // Standard greedy: for i = k down to 1, the i-th one sits at the largest
  // p with C(p, i) <= remaining.
  std::size_t p = n;  // exclusive upper bound for the next position
  for (std::size_t i = k; i >= 1; --i) {
    // Walk p downward; C(p, i) decreases with p.
    std::size_t pos = p;
    while (pos > 0) {
      --pos;
      if (!(remaining < binomial(pos, i))) break;
    }
    bits.set(pos, true);
    remaining -= binomial(pos, i);
    p = pos;
  }
  if (!remaining.is_zero()) {
    throw std::logic_error("unrank_fixed_weight: nonzero residue");
  }
  return bits;
}

std::size_t fixed_weight_code_bits(std::size_t n, std::size_t k) {
  const BigUint count = binomial(n, k);
  if (count.compare(BigUint(1)) != std::strong_ordering::greater) return 0;
  // ⌈log₂ count⌉ = bit_length(count − 1).
  BigUint max_rank = count;
  max_rank -= BigUint(1);
  return max_rank.bit_length();
}

void write_fixed_weight(bitio::BitWriter& w, const bitio::BitVector& bits) {
  const std::size_t n = bits.size();
  const std::size_t k = bits.popcount();
  w.write_bits(k, bitio::ceil_log2_plus1(n));
  const std::size_t width = fixed_weight_code_bits(n, k);
  const BigUint rank = rank_fixed_weight(bits);
  for (std::size_t i = 0; i < width; ++i) w.write_bit(rank.bit(i));
}

bitio::BitVector read_fixed_weight(bitio::BitReader& r, std::size_t n) {
  const auto k =
      static_cast<std::size_t>(r.read_bits(bitio::ceil_log2_plus1(n)));
  const std::size_t width = fixed_weight_code_bits(n, k);
  BigUint rank(0);
  // Rebuild the BigUint from its bits via doubling (MSB-first fold).
  std::vector<bool> raw(width);
  for (std::size_t i = 0; i < width; ++i) raw[i] = r.read_bit();
  for (std::size_t i = width; i-- > 0;) {
    rank.mul_small(2);
    if (raw[i]) rank += BigUint(1);
  }
  return unrank_fixed_weight(n, k, rank);
}

std::size_t fixed_weight_total_bits(std::size_t n, std::size_t k) {
  return bitio::ceil_log2_plus1(n) + fixed_weight_code_bits(n, k);
}

}  // namespace optrt::incompress
