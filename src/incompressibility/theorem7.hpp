// Theorem 7 (models IA ∨ IB: neighbours unknown): Claim 2 and Claim 3 made
// executable.
//
// Claim 2 — for x₁..x_k ≥ 1 with Σxᵢ = n: Σ⌈log xᵢ⌉ ≤ n − k.
//
// Claim 3 — given all labels, a node's interconnection pattern can be
// described by its local routing function plus few extra bits: apply F(u)
// to every label to get, per port, the list of destinations routed over
// it; then spend ⌈log xᵢ⌉ bits per port to say which destination is the
// actual neighbour. We encode/decode exactly that, querying the scheme's
// table bits as the oracle.
//
// On a random graph the interconnection pattern of u carries ≈ n−1 bits, so
// |F(u)| must make up the difference — Theorem 7's n²/32 total.
#pragma once

#include <cstddef>
#include <vector>

#include "bitio/bit_vector.hpp"
#include "schemes/full_table.hpp"

namespace optrt::incompress {

/// Claim 2's left-hand side: Σ⌈log₂ xᵢ⌉ (xᵢ ≥ 1).
[[nodiscard]] std::size_t claim2_sum(const std::vector<std::size_t>& xs);

/// Claim 2's bound: Σxᵢ − k.
[[nodiscard]] std::size_t claim2_bound(const std::vector<std::size_t>& xs);

struct Claim3Encoding {
  bitio::BitVector bits;            ///< Σ⌈log xᵢ⌉ rank bits
  std::vector<std::size_t> per_port_destinations;  ///< the xᵢ
};

/// Encodes the interconnection pattern (the set of neighbours, per port) of
/// node `u` given query access to its full-table routing function.
[[nodiscard]] Claim3Encoding claim3_encode(const schemes::FullTableScheme& scheme,
                                           graph::NodeId u);

/// Decodes: returns the neighbour on each port of `u`, reconstructed from
/// the routing function and the rank bits alone.
[[nodiscard]] std::vector<graph::NodeId> claim3_decode(
    const schemes::FullTableScheme& scheme, graph::NodeId u,
    const bitio::BitVector& bits);

// --- The full Theorem 7 description ------------------------------------------
//
// Describe E(G) *given the routing scheme*: for the n/2 least nodes ship
// only their Claim 3 rank bits (their complete rows follow from their
// routing functions); for the remaining n/2 nodes ship their mutual edges
// literally. The savings over the standard n(n−1)/2-bit encoding measure
// how much information about G the routing scheme itself must carry — on
// an incompressible graph, Ω(n²) bits (Theorem 7's n²/32, with a better
// constant here because the description is tighter).

struct Theorem7Aggregate {
  bitio::BitVector bits;
  std::size_t original_bits = 0;   ///< n(n−1)/2
  std::size_t selected_nodes = 0;  ///< ⌈n/2⌉
  std::size_t claim3_bits = 0;     ///< Σ rank bits over selected nodes

  [[nodiscard]] std::ptrdiff_t savings() const noexcept {
    return static_cast<std::ptrdiff_t>(original_bits) -
           static_cast<std::ptrdiff_t>(bits.size());
  }
};

/// Conditional encoding of E(G) given query access to `scheme`'s tables.
[[nodiscard]] Theorem7Aggregate theorem7_encode(
    const schemes::FullTableScheme& scheme, const graph::Graph& g);

/// Exact inverse (requires the same scheme).
[[nodiscard]] graph::Graph theorem7_decode(
    const schemes::FullTableScheme& scheme, const bitio::BitVector& bits,
    std::size_t n);

}  // namespace optrt::incompress
