#include "incompressibility/theorem10.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/algorithms.hpp"
#include "graph/ports.hpp"
#include "schemes/full_information.hpp"

namespace optrt::incompress {

namespace {

unsigned id_width(std::size_t n) {
  return bitio::ceil_log2(std::max<std::size_t>(n, 2));
}

}  // namespace

Theorem10Result theorem10_encode(const graph::Graph& g, NodeId u) {
  const std::size_t n = g.node_count();
  const auto dist_cached = graph::DistanceCache::global().get(g);
  const graph::DistanceMatrix& dist = *dist_cached;
  if (dist.diameter() > 2) {
    throw std::invalid_argument("theorem10_encode: diameter > 2");
  }

  const schemes::FullInformationScheme scheme =
      schemes::FullInformationScheme::standard(g);
  const bitio::BitVector& fn = scheme.function_bits(u);

  Theorem10Result result;
  result.function_bits = fn.size();

  bitio::BitWriter w;
  w.write_bits(u, id_width(n));
  for (NodeId v = 0; v < n; ++v) {
    if (v != u) w.write_bit(g.has_edge(u, v));
  }
  // F(u): length implied by the row (n·d bits), no prefix needed.
  w.write_vector(fn);

  // Stream E(G) minus u's row minus all (neighbour, non-neighbour) pairs.
  for (NodeId a = 0; a + 1 < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (a == u || b == u) continue;
      const bool an = g.has_edge(u, a);
      const bool bn = g.has_edge(u, b);
      if (an != bn) {
        ++result.deleted_edge_bits;
        continue;  // recoverable from F(u)
      }
      w.write_bit(g.has_edge(a, b));
    }
  }
  result.description = Description{w.take(), n * (n - 1) / 2};
  return result;
}

graph::Graph theorem10_decode(const bitio::BitVector& bits, std::size_t n) {
  bitio::BitReader r(bits);
  const auto u = static_cast<NodeId>(r.read_bits(id_width(n)));
  std::vector<bool> is_neighbor(n, false);
  std::vector<NodeId> neighbors;
  for (NodeId v = 0; v < n; ++v) {
    if (v == u) continue;
    if (r.read_bit()) {
      is_neighbor[v] = true;
      neighbors.push_back(v);
    }
  }
  const std::size_t d = neighbors.size();
  bitio::BitVector fn(n * d);
  for (std::size_t i = 0; i < n * d; ++i) fn.set(i, r.read_bit());

  graph::Graph g(n);
  for (NodeId v : neighbors) g.add_edge(u, v);
  // Recover (neighbour, non-neighbour) edges: with sorted ports, the port
  // of neighbour v is its rank; {v, w} ∈ E iff port-rank(v) is flagged on
  // a shortest path u → w (diameter 2: those paths are exactly u—v—w).
  for (NodeId w = 0; w < n; ++w) {
    if (w == u || is_neighbor[w]) continue;
    for (std::size_t rank = 0; rank < d; ++rank) {
      if (fn.get(static_cast<std::size_t>(w) * d + rank)) {
        g.add_edge(neighbors[rank], w);
      }
    }
  }
  for (NodeId a = 0; a + 1 < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (a == u || b == u) continue;
      if (is_neighbor[a] != is_neighbor[b]) continue;
      if (r.read_bit()) g.add_edge(a, b);
    }
  }
  return g;
}

}  // namespace optrt::incompress
