#include "incompressibility/permutation_code.hpp"

#include <stdexcept>

namespace optrt::incompress {

namespace {

BigUint factorial(std::size_t d) {
  BigUint f(1);
  for (std::size_t i = 2; i <= d; ++i) f.mul_small(i);
  return f;
}

}  // namespace

BigUint rank_permutation(const std::vector<std::uint32_t>& perm) {
  const std::size_t d = perm.size();
  // rank = Σ_i lehmer_i · (d−1−i)!, lehmer_i = #{j > i : perm[j] < perm[i]}.
  BigUint rank(0);
  BigUint radix = factorial(d == 0 ? 0 : d - 1);
  std::vector<bool> used(d, false);
  for (std::size_t i = 0; i < d; ++i) {
    std::uint32_t smaller = 0;
    for (std::uint32_t x = 0; x < perm[i]; ++x) {
      if (!used[x]) ++smaller;
    }
    used[perm[i]] = true;
    BigUint term = radix;
    term.mul_small(smaller);
    rank += term;
    if (i + 1 < d) radix.div_small(d - 1 - i);
  }
  return rank;
}

std::vector<std::uint32_t> unrank_permutation(std::size_t d,
                                              const BigUint& rank) {
  if (!(rank < factorial(d))) {
    throw std::out_of_range("unrank_permutation: rank >= d!");
  }
  std::vector<std::uint32_t> perm(d);
  std::vector<std::uint32_t> pool(d);
  for (std::uint32_t i = 0; i < d; ++i) pool[i] = i;
  BigUint remaining = rank;
  BigUint radix = factorial(d == 0 ? 0 : d - 1);
  for (std::size_t i = 0; i < d; ++i) {
    // digit = remaining / radix (digits < d, so a small loop suffices).
    std::uint32_t digit = 0;
    while (!(remaining < radix)) {
      remaining -= radix;
      ++digit;
    }
    perm[i] = pool[digit];
    pool.erase(pool.begin() + digit);
    if (i + 1 < d) radix.div_small(d - 1 - i);
  }
  return perm;
}

std::size_t permutation_code_bits(std::size_t d) {
  BigUint f = factorial(d);
  if (f.compare(BigUint(1)) != std::strong_ordering::greater) return 0;
  f -= BigUint(1);
  return f.bit_length();
}

void write_permutation(bitio::BitWriter& w,
                       const std::vector<std::uint32_t>& perm) {
  const std::size_t width = permutation_code_bits(perm.size());
  const BigUint rank = rank_permutation(perm);
  for (std::size_t i = 0; i < width; ++i) w.write_bit(rank.bit(i));
}

std::vector<std::uint32_t> read_permutation(bitio::BitReader& r,
                                            std::size_t d) {
  const std::size_t width = permutation_code_bits(d);
  std::vector<bool> raw(width);
  for (std::size_t i = 0; i < width; ++i) raw[i] = r.read_bit();
  BigUint rank(0);
  for (std::size_t i = width; i-- > 0;) {
    rank.mul_small(2);
    if (raw[i]) rank += BigUint(1);
  }
  // The top code point may exceed d!−1 when d! is not a power of two;
  // clamp is wrong — reject instead (writers never produce it).
  return unrank_permutation(d, rank);
}

std::size_t payload_capacity_bits(std::size_t d) {
  // ⌊log₂ d!⌋ = bit_length(d!) − 1.
  const BigUint f = factorial(d);
  return f.bit_length() == 0 ? 0 : f.bit_length() - 1;
}

std::vector<std::uint32_t> embed_payload(std::size_t d,
                                         const bitio::BitVector& payload) {
  const std::size_t capacity = payload_capacity_bits(d);
  BigUint rank(0);
  for (std::size_t i = std::min(capacity, payload.size()); i-- > 0;) {
    rank.mul_small(2);
    if (payload.get(i)) rank += BigUint(1);
  }
  return unrank_permutation(d, rank);  // rank < 2^⌊log d!⌋ ≤ d!
}

bitio::BitVector extract_payload(const std::vector<std::uint32_t>& perm) {
  const std::size_t capacity = payload_capacity_bits(perm.size());
  const BigUint rank = rank_permutation(perm);
  bitio::BitVector payload(capacity);
  for (std::size_t i = 0; i < capacity; ++i) payload.set(i, rank.bit(i));
  return payload;
}

}  // namespace optrt::incompress
