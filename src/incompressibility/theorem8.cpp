#include "incompressibility/theorem8.hpp"

#include <cmath>

#include "bitio/bit_stream.hpp"

namespace optrt::incompress {

std::vector<graph::PortId> recover_port_permutation(
    const schemes::FullTableScheme& scheme, graph::NodeId u,
    const std::vector<graph::NodeId>& sorted_neighbors) {
  const unsigned width = scheme.entry_width(u);
  std::vector<graph::PortId> ports;
  ports.reserve(sorted_neighbors.size());
  for (graph::NodeId v : sorted_neighbors) {
    bitio::BitReader r(scheme.function_bits(u));
    r.seek(static_cast<std::size_t>(scheme.label_of(v)) * width);
    ports.push_back(static_cast<graph::PortId>(r.read_bits(width)));
  }
  return ports;
}

double log2_factorial(std::size_t d) noexcept {
  return std::lgamma(static_cast<double>(d) + 1.0) / std::log(2.0);
}

}  // namespace optrt::incompress
