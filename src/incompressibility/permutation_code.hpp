// Optimal permutation coding (Lehmer / factorial number system), exact to
// ⌈log₂ d!⌉ bits.
//
// Two places in the paper reduce to "a permutation is worth log d! bits":
//
//  · Footnote 1 — model II with free port assignment is degenerate because
//    the port permutation itself is a free d·log d-bit channel: we encode
//    arbitrary payloads into a port assignment and read them back.
//  · Theorem 8 — with adversarial fixed ports the routing function must
//    reproduce the permutation, so log₂ d! bits are *necessary*; this codec
//    shows they are also *sufficient*: the permutation part of the function
//    can be stored at exactly the counting bound.
#pragma once

#include <cstdint>
#include <vector>

#include "bitio/bit_stream.hpp"
#include "incompressibility/biguint.hpp"

namespace optrt::incompress {

/// Rank of a permutation of {0..d−1} in lexicographic order (Lehmer code),
/// a bijection onto {0, …, d!−1}.
[[nodiscard]] BigUint rank_permutation(const std::vector<std::uint32_t>& perm);

/// Inverse: the `rank`-th permutation of {0..d−1}.
/// Throws std::out_of_range if rank ≥ d!.
[[nodiscard]] std::vector<std::uint32_t> unrank_permutation(std::size_t d,
                                                            const BigUint& rank);

/// Exact storage: ⌈log₂ d!⌉ bits.
[[nodiscard]] std::size_t permutation_code_bits(std::size_t d);

/// Writes a permutation at the exact width (the reader must know d).
void write_permutation(bitio::BitWriter& w,
                       const std::vector<std::uint32_t>& perm);
[[nodiscard]] std::vector<std::uint32_t> read_permutation(bitio::BitReader& r,
                                                          std::size_t d);

/// Footnote 1 made executable: embeds the first
/// payload_capacity_bits(d) = ⌊log₂ d!⌋ bits of `payload` into a
/// permutation of {0..d−1} (a port assignment), recoverable exactly.
[[nodiscard]] std::vector<std::uint32_t> embed_payload(
    std::size_t d, const bitio::BitVector& payload);
[[nodiscard]] bitio::BitVector extract_payload(
    const std::vector<std::uint32_t>& perm);
[[nodiscard]] std::size_t payload_capacity_bits(std::size_t d);

}  // namespace optrt::incompress
