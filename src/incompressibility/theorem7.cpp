#include "incompressibility/theorem7.hpp"

#include <numeric>
#include <stdexcept>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"

namespace optrt::incompress {

namespace {

// Per-port destination-label lists obtained by applying F(u) to every
// label, exactly as Claim 3 prescribes. Queries only the serialized table.
std::vector<std::vector<graph::NodeId>> destinations_per_port(
    const schemes::FullTableScheme& scheme, graph::NodeId u) {
  const std::size_t n = scheme.node_count();
  const unsigned width = scheme.entry_width(u);
  bitio::BitReader r(scheme.function_bits(u));
  std::vector<std::vector<graph::NodeId>> lists(scheme.ports().degree(u));
  const graph::NodeId own_label = scheme.label_of(u);
  for (graph::NodeId label = 0; label < n; ++label) {
    const auto port = static_cast<graph::PortId>(r.read_bits(width));
    if (label == own_label) continue;
    lists[port].push_back(label);
  }
  return lists;
}

}  // namespace

std::size_t claim2_sum(const std::vector<std::size_t>& xs) {
  std::size_t sum = 0;
  for (std::size_t x : xs) {
    if (x == 0) throw std::invalid_argument("claim2: x must be >= 1");
    sum += bitio::ceil_log2(x);
  }
  return sum;
}

std::size_t claim2_bound(const std::vector<std::size_t>& xs) {
  const std::size_t total =
      std::accumulate(xs.begin(), xs.end(), std::size_t{0});
  return total - xs.size();
}

Claim3Encoding claim3_encode(const schemes::FullTableScheme& scheme,
                             graph::NodeId u) {
  const auto lists = destinations_per_port(scheme, u);
  Claim3Encoding out;
  bitio::BitWriter w;
  for (std::size_t p = 0; p < lists.size(); ++p) {
    const auto& list = lists[p];
    out.per_port_destinations.push_back(list.size());
    const graph::NodeId neighbor_label =
        scheme.label_of(scheme.ports().neighbor_at(u, static_cast<graph::PortId>(p)));
    std::size_t rank = list.size();
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i] == neighbor_label) {
        rank = i;
        break;
      }
    }
    if (rank == list.size()) {
      // A correct shortest-path table always routes a neighbour's label
      // over the direct edge, so its label appears in its own port's list.
      throw std::logic_error("claim3: neighbour not routed over its edge");
    }
    w.write_bits(rank, bitio::ceil_log2(std::max<std::size_t>(list.size(), 1)));
  }
  out.bits = w.take();
  return out;
}

std::vector<graph::NodeId> claim3_decode(const schemes::FullTableScheme& scheme,
                                         graph::NodeId u,
                                         const bitio::BitVector& bits) {
  const auto lists = destinations_per_port(scheme, u);
  bitio::BitReader r(bits);
  std::vector<graph::NodeId> neighbor_labels;
  neighbor_labels.reserve(lists.size());
  for (const auto& list : lists) {
    const auto rank = static_cast<std::size_t>(
        r.read_bits(bitio::ceil_log2(std::max<std::size_t>(list.size(), 1))));
    neighbor_labels.push_back(list[rank]);
  }
  return neighbor_labels;
}

Theorem7Aggregate theorem7_encode(const schemes::FullTableScheme& scheme,
                                  const graph::Graph& g) {
  const std::size_t n = g.node_count();
  Theorem7Aggregate out;
  out.original_bits = n * (n - 1) / 2;
  out.selected_nodes = (n + 1) / 2;

  bitio::BitWriter w;
  // Rank bits for the selected nodes; widths are recomputable from the
  // scheme, so no delimiters are needed.
  for (graph::NodeId u = 0; u < out.selected_nodes; ++u) {
    const Claim3Encoding enc = claim3_encode(scheme, u);
    out.claim3_bits += enc.bits.size();
    w.write_vector(enc.bits);
  }
  // Mutual edges of the unselected nodes, literally.
  for (graph::NodeId a = static_cast<graph::NodeId>(out.selected_nodes);
       a + 1 < n; ++a) {
    for (graph::NodeId b = a + 1; b < n; ++b) {
      w.write_bit(g.has_edge(a, b));
    }
  }
  out.bits = w.take();
  return out;
}

graph::Graph theorem7_decode(const schemes::FullTableScheme& scheme,
                             const bitio::BitVector& bits, std::size_t n) {
  const std::size_t selected = (n + 1) / 2;
  bitio::BitReader r(bits);
  graph::Graph g(n);
  for (graph::NodeId u = 0; u < selected; ++u) {
    // Re-split the stream exactly as claim3_decode would: widths follow
    // from the per-port destination lists.
    const auto lists = destinations_per_port(scheme, u);
    for (const auto& list : lists) {
      const auto rank = static_cast<std::size_t>(r.read_bits(
          bitio::ceil_log2(std::max<std::size_t>(list.size(), 1))));
      const graph::NodeId v = scheme.node_of_label(list[rank]);
      if (!g.has_edge(u, v)) g.add_edge(u, v);
    }
  }
  for (graph::NodeId a = static_cast<graph::NodeId>(selected); a + 1 < n;
       ++a) {
    for (graph::NodeId b = a + 1; b < n; ++b) {
      if (r.read_bit()) g.add_edge(a, b);
    }
  }
  return g;
}

}  // namespace optrt::incompress
