#include "incompressibility/theorem9.hpp"

#include <stdexcept>

namespace optrt::incompress {

std::vector<graph::NodeId> recover_top_permutation(
    const model::RoutingScheme& scheme, std::size_t k, graph::NodeId b) {
  std::vector<graph::NodeId> perm(k, 0);
  std::vector<bool> assigned(k, false);
  for (std::size_t j = 0; j < k; ++j) {
    model::MessageHeader header;
    const auto top_label =
        scheme.label_of(static_cast<graph::NodeId>(2 * k + j));
    const graph::NodeId hop = scheme.next_hop(b, top_label, header);
    if (hop < k || hop >= 2 * k) {
      throw std::logic_error(
          "recover_top_permutation: first hop is not a middle node (stretch "
          ">= 2)");
    }
    const std::size_t i = hop - k;
    if (assigned[i]) {
      throw std::logic_error("recover_top_permutation: duplicate partner");
    }
    assigned[i] = true;
    perm[i] = static_cast<graph::NodeId>(j);
  }
  return perm;
}

}  // namespace optrt::incompress
