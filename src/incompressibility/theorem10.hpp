// Theorem 10's description scheme: a *full-information* routing function
// F(u) names, for every destination w, all edges of u on shortest u→w
// paths. On a diameter-2 graph, for a non-neighbour w those edges are
// exactly {uv : v ∈ N(u), vw ∈ E} — so F(u) determines EVERY bit {v, w}
// with v ∈ N(u), w ∉ N(u) ∪ {u}: about n²/4 of them. Deleting them from
// E(G) and invoking incompressibility forces |F(u)| ≥ n²/4 − o(n²).
#pragma once

#include <cstddef>

#include "bitio/bit_vector.hpp"
#include "graph/graph.hpp"
#include "incompressibility/lemma_codecs.hpp"

namespace optrt::incompress {

struct Theorem10Result {
  Description description;
  std::size_t function_bits = 0;      ///< |F(u)| = n·d(u) matrix bits
  std::size_t deleted_edge_bits = 0;  ///< ≈ d(u)·(n−1−d(u))
  /// Any full-information F(u) decodable this way must occupy at least
  /// this many bits on an incompressible graph (Theorem 10's n²/4 − o(n²)).
  [[nodiscard]] std::ptrdiff_t implied_function_lower_bound() const noexcept {
    return description.savings() + static_cast<std::ptrdiff_t>(function_bits);
  }
};

/// Encodes E(G) through node u's full-information matrix (sorted ports).
/// Requires diameter ≤ 2 (throws std::invalid_argument otherwise).
[[nodiscard]] Theorem10Result theorem10_encode(const graph::Graph& g, NodeId u);

/// Exact inverse.
[[nodiscard]] graph::Graph theorem10_decode(const bitio::BitVector& bits,
                                            std::size_t n);

}  // namespace optrt::incompress
