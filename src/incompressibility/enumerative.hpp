// Enumerative (index-in-ensemble) coding of fixed-weight bit strings — the
// exact tool Lemma 1's proof uses: "the index of the interconnection
// pattern in the ensemble of m possibilities", where the ensemble is all
// strings of the same length and weight.
//
// We use the combinatorial number system: a string with ones at positions
// p₁ < p₂ < … < p_k has rank Σᵢ C(pᵢ, i), a bijection onto
// {0, …, C(n,k)−1}. The code length for the index is ⌈log₂ C(n, k)⌉ bits —
// for deviant weights this beats the literal n bits by exactly the Chernoff
// exponent, which is what makes the incompressibility argument fire.
#pragma once

#include <cstdint>
#include <vector>

#include "bitio/bit_stream.hpp"
#include "bitio/bit_vector.hpp"
#include "incompressibility/biguint.hpp"

namespace optrt::incompress {

/// Rank of `bits` among all strings of its length with the same popcount
/// (combinatorial number system, increasing position order).
[[nodiscard]] BigUint rank_fixed_weight(const bitio::BitVector& bits);

/// Inverse: the `rank`-th string of length `n` with `k` ones.
/// Throws std::out_of_range if rank ≥ C(n, k).
[[nodiscard]] bitio::BitVector unrank_fixed_weight(std::size_t n,
                                                   std::size_t k,
                                                   const BigUint& rank);

/// Exact index-code length: ⌈log₂ C(n, k)⌉ (0 when C(n,k) ≤ 1).
[[nodiscard]] std::size_t fixed_weight_code_bits(std::size_t n, std::size_t k);

/// Writes `bits` as (weight in ⌈log₂(n+1)⌉ bits, index at the exact
/// fixed-weight width); the length n must be known to the reader.
void write_fixed_weight(bitio::BitWriter& w, const bitio::BitVector& bits);

/// Reads a string of length `n` written by write_fixed_weight.
[[nodiscard]] bitio::BitVector read_fixed_weight(bitio::BitReader& r,
                                                 std::size_t n);

/// Total cost of write_fixed_weight for an n-bit string of weight k.
[[nodiscard]] std::size_t fixed_weight_total_bits(std::size_t n, std::size_t k);

}  // namespace optrt::incompress
