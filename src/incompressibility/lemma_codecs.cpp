#include "incompressibility/lemma_codecs.hpp"

#include <cmath>
#include <stdexcept>

#include <string>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/algorithms.hpp"
#include "graph/encoding.hpp"
#include "incompressibility/enumerative.hpp"
#include "obs/metrics.hpp"

namespace optrt::incompress {

namespace {

using bitio::BitReader;
using bitio::BitWriter;
using bitio::ceil_log2;

/// Bit accounting for one completed encode: bits_in is the standard-encoding
/// size n(n−1)/2, bits_out the description actually produced, so
/// bits_in − bits_out across a run equals the total realized savings.
Description record_encode(const char* lemma, Description d) {
  auto& reg = obs::MetricsRegistry::global();
  const std::string base = std::string("codec.") + lemma;
  reg.counter(base + ".encodes").inc();
  reg.counter(base + ".bits_in").inc(d.original_bits);
  reg.counter(base + ".bits_out").inc(d.bits.size());
  return d;
}

void record_decode(const char* lemma) {
  obs::counter(std::string("codec.") + lemma + ".decodes").inc();
}

unsigned id_width(std::size_t n) {
  return ceil_log2(std::max<std::size_t>(n, 2));
}

/// The incidence row of u: one bit per node v != u in increasing order.
bitio::BitVector incidence_row(const graph::Graph& g, NodeId u) {
  bitio::BitVector row;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v != u) row.push_back(g.has_edge(u, v));
  }
  return row;
}

/// Streams E(G) skipping positions for which `skip(a, b)` is true.
void write_eg_except(BitWriter& w, const graph::Graph& g, auto&& skip) {
  const std::size_t n = g.node_count();
  for (NodeId a = 0; a + 1 < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (skip(a, b)) continue;
      w.write_bit(g.has_edge(a, b));
    }
  }
}

}  // namespace

// --- Lemma 1 -----------------------------------------------------------------

NodeId most_deviant_node(const graph::Graph& g) {
  const double half = (static_cast<double>(g.node_count()) - 1.0) / 2.0;
  NodeId best = 0;
  double best_dev = -1.0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const double dev = std::abs(static_cast<double>(g.degree(u)) - half);
    if (dev > best_dev) {
      best_dev = dev;
      best = u;
    }
  }
  return best;
}

Description lemma1_encode(const graph::Graph& g, NodeId u) {
  const std::size_t n = g.node_count();
  BitWriter w;
  w.write_bits(u, id_width(n));
  write_fixed_weight(w, incidence_row(g, u));  // degree + ensemble index
  write_eg_except(w, g,
                  [u](NodeId a, NodeId b) { return a == u || b == u; });
  return record_encode("lemma1", Description{w.take(), n * (n - 1) / 2});
}

graph::Graph lemma1_decode(const bitio::BitVector& bits, std::size_t n) {
  record_decode("lemma1");
  BitReader r(bits);
  const auto u = static_cast<NodeId>(r.read_bits(id_width(n)));
  const bitio::BitVector row = read_fixed_weight(r, n - 1);
  graph::Graph g(n);
  {
    std::size_t i = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (v == u) continue;
      if (row.get(i++)) g.add_edge(u, v);
    }
  }
  for (NodeId a = 0; a + 1 < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (a == u || b == u) continue;
      if (r.read_bit()) g.add_edge(a, b);
    }
  }
  return g;
}

// --- Lemma 2 -----------------------------------------------------------------

std::optional<std::pair<NodeId, NodeId>> find_distant_pair(
    const graph::Graph& g) {
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto dist = graph::bfs_distances(g, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v != u && (dist[v] == graph::kUnreachable || dist[v] > 2)) {
        return std::make_pair(u, v);
      }
    }
  }
  return std::nullopt;
}

Description lemma2_encode(const graph::Graph& g, NodeId u, NodeId v) {
  const std::size_t n = g.node_count();
  for (NodeId w : g.neighbors(u)) {
    if (w == v || g.has_edge(w, v)) {
      throw std::invalid_argument("lemma2_encode: d(u,v) <= 2, not a witness");
    }
  }
  BitWriter w;
  w.write_bits(u, id_width(n));
  w.write_bits(v, id_width(n));
  const bitio::BitVector row = incidence_row(g, u);
  w.write_vector(row);
  // Skip u's row and the known-zero edges {w, v}, w ∈ N(u).
  write_eg_except(w, g, [&g, u, v](NodeId a, NodeId b) {
    if (a == u || b == u) return true;
    if (b == v && g.has_edge(u, a)) return true;
    if (a == v && g.has_edge(u, b)) return true;
    return false;
  });
  return record_encode("lemma2", Description{w.take(), n * (n - 1) / 2});
}

graph::Graph lemma2_decode(const bitio::BitVector& bits, std::size_t n) {
  record_decode("lemma2");
  BitReader r(bits);
  const auto u = static_cast<NodeId>(r.read_bits(id_width(n)));
  const auto v = static_cast<NodeId>(r.read_bits(id_width(n)));
  graph::Graph g(n);
  {
    std::size_t i = 0;
    for (NodeId x = 0; x < n; ++x) {
      if (x == u) continue;
      if (r.read_bit()) g.add_edge(u, x);
      ++i;
    }
  }
  for (NodeId a = 0; a + 1 < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (a == u || b == u) continue;
      // Edges {w, v} with w ∈ N(u) are known absent.
      if ((b == v && g.has_edge(u, a)) || (a == v && g.has_edge(u, b))) {
        continue;
      }
      if (r.read_bit()) g.add_edge(a, b);
    }
  }
  return g;
}

// --- Lemma 3 -----------------------------------------------------------------

std::optional<std::pair<NodeId, NodeId>> find_cover_violation(
    const graph::Graph& g, std::size_t prefix) {
  const std::size_t n = g.node_count();
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    const std::size_t limit = std::min(prefix, nbrs.size());
    for (NodeId w = 0; w < n; ++w) {
      if (w == u || g.has_edge(u, w)) continue;
      bool covered = false;
      for (std::size_t i = 0; i < limit; ++i) {
        if (g.has_edge(nbrs[i], w)) {
          covered = true;
          break;
        }
      }
      if (!covered) return std::make_pair(u, w);
    }
  }
  return std::nullopt;
}

Description lemma3_encode(const graph::Graph& g, NodeId u, NodeId w,
                          std::size_t prefix) {
  const std::size_t n = g.node_count();
  const auto nbrs = g.neighbors(u);
  if (nbrs.size() < prefix) {
    throw std::invalid_argument("lemma3_encode: deg(u) < prefix");
  }
  if (g.has_edge(u, w)) {
    throw std::invalid_argument("lemma3_encode: w adjacent to u");
  }
  for (std::size_t i = 0; i < prefix; ++i) {
    if (g.has_edge(nbrs[i], w)) {
      throw std::invalid_argument("lemma3_encode: w covered, not a witness");
    }
  }

  BitWriter out;
  out.write_bits(u, id_width(n));
  out.write_bits(w, id_width(n));
  out.write_vector(incidence_row(g, u));
  // w's row, omitting the known-zero bits for u and u's first `prefix`
  // least neighbours.
  for (NodeId x = 0; x < n; ++x) {
    if (x == w || x == u) continue;
    bool skip = false;
    for (std::size_t i = 0; i < prefix; ++i) {
      if (nbrs[i] == x) {
        skip = true;
        break;
      }
    }
    if (!skip) out.write_bit(g.has_edge(w, x));
  }
  // The rest of E(G) without u's and w's rows.
  write_eg_except(out, g, [u, w](NodeId a, NodeId b) {
    return a == u || b == u || a == w || b == w;
  });
  return record_encode("lemma3", Description{out.take(), n * (n - 1) / 2});
}

graph::Graph lemma3_decode(const bitio::BitVector& bits, std::size_t n,
                           std::size_t prefix) {
  record_decode("lemma3");
  BitReader r(bits);
  const auto u = static_cast<NodeId>(r.read_bits(id_width(n)));
  const auto w = static_cast<NodeId>(r.read_bits(id_width(n)));
  graph::Graph g(n);
  for (NodeId x = 0; x < n; ++x) {
    if (x == u) continue;
    if (r.read_bit()) g.add_edge(u, x);
  }
  const auto nbrs = g.neighbors(u);  // now complete
  for (NodeId x = 0; x < n; ++x) {
    if (x == w || x == u) continue;
    bool known_zero = false;
    for (std::size_t i = 0; i < std::min(prefix, nbrs.size()); ++i) {
      if (nbrs[i] == x) {
        known_zero = true;
        break;
      }
    }
    if (known_zero) continue;
    if (r.read_bit()) g.add_edge(w, x);
  }
  for (NodeId a = 0; a + 1 < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (a == u || b == u || a == w || b == w) continue;
      if (r.read_bit()) g.add_edge(a, b);
    }
  }
  return g;
}

}  // namespace optrt::incompress
