#include "incompressibility/bounds.hpp"

#include <cmath>

namespace optrt::incompress {

namespace {
double lg(double x) noexcept { return std::log2(x); }
}  // namespace

double theorem1_per_node_bound(std::size_t n, bool neighbors_known) noexcept {
  const double dn = static_cast<double>(n);
  return neighbors_known ? 6.0 * dn : 7.0 * dn;
}

double theorem2_total_bound(std::size_t n, double c) noexcept {
  const double dn = static_cast<double>(n);
  const double l = lg(dn);
  return (c + 3.0) * dn * l * l + dn * l;
}

double theorem3_total_bound(std::size_t n, double c) noexcept {
  const double dn = static_cast<double>(n);
  return (6.0 * c + 20.0) * dn * lg(dn);
}

double theorem4_total_bound(std::size_t n) noexcept {
  const double dn = static_cast<double>(n);
  return dn * lg(std::max(2.0, lg(dn))) + 6.0 * dn;
}

double theorem5_stretch_bound(std::size_t n, double c) noexcept {
  return 2.0 * (c + 3.0) * lg(static_cast<double>(n));
}

double theorem6_per_node_bound(std::size_t n) noexcept {
  return static_cast<double>(n) / 2.0;
}

double theorem7_total_bound(std::size_t n) noexcept {
  const double dn = static_cast<double>(n);
  return dn * dn / 32.0;
}

double theorem8_per_node_bound(std::size_t n) noexcept {
  const double half = static_cast<double>(n) / 2.0;
  return half * lg(std::max(2.0, half));
}

double theorem9_per_node_bound(std::size_t n) noexcept {
  const double third = static_cast<double>(n) / 3.0;
  return third * lg(static_cast<double>(n));
}

double theorem10_per_node_bound(std::size_t n) noexcept {
  const double dn = static_cast<double>(n);
  return dn * dn / 4.0;
}

double trivial_table_bound(std::size_t n) noexcept {
  const double dn = static_cast<double>(n);
  return dn * dn * lg(dn);
}

double trivial_full_information_bound(std::size_t n) noexcept {
  const double dn = static_cast<double>(n);
  return dn * dn * dn;
}

}  // namespace optrt::incompress
