// Closed-form evaluations of the paper's bounds, used by the bench harness
// to print "paper" columns next to measured numbers (Table 1, Theorems
// 1–10, Corollary 1).
#pragma once

#include <cstddef>

namespace optrt::incompress {

/// Theorem 1: ≤ 6n bits per node (≤ 7n under IB), 6n² total.
[[nodiscard]] double theorem1_per_node_bound(std::size_t n,
                                             bool neighbors_known) noexcept;

/// Theorem 2: (c+3)·n·log²n + n·log n + O(n) total (labels dominate).
[[nodiscard]] double theorem2_total_bound(std::size_t n, double c = 3.0) noexcept;

/// Theorem 3: < (6c+20)·n·log n total.
[[nodiscard]] double theorem3_total_bound(std::size_t n, double c = 3.0) noexcept;

/// Theorem 4: n·loglog n + 6n total.
[[nodiscard]] double theorem4_total_bound(std::size_t n) noexcept;

/// Theorem 5: O(n) total; stretch bound 2(c+3)·log n.
[[nodiscard]] double theorem5_stretch_bound(std::size_t n, double c = 3.0) noexcept;

/// Theorem 6: ≥ n/2 − o(n) bits per node (model II∧α).
[[nodiscard]] double theorem6_per_node_bound(std::size_t n) noexcept;

/// Theorem 7: ≥ n²/32 − o(n²) bits total (models IA ∨ IB).
[[nodiscard]] double theorem7_total_bound(std::size_t n) noexcept;

/// Theorem 8: ≥ (n/2)·log(n/2) − O(n) bits per node (model IA∧α).
[[nodiscard]] double theorem8_per_node_bound(std::size_t n) noexcept;

/// Theorem 9: ≥ (n/3)·log n − O(n) bits per node at n/3 nodes;
/// (n²/9)·log n − O(n²) total.
[[nodiscard]] double theorem9_per_node_bound(std::size_t n) noexcept;

/// Theorem 10: ≥ n²/4 − o(n²) bits per node (full information, model α).
[[nodiscard]] double theorem10_per_node_bound(std::size_t n) noexcept;

/// Trivial upper bounds the averages are computed against: n²·log n for
/// shortest path tables, n³ for full information.
[[nodiscard]] double trivial_table_bound(std::size_t n) noexcept;
[[nodiscard]] double trivial_full_information_bound(std::size_t n) noexcept;

}  // namespace optrt::incompress
