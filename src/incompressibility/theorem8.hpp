// Theorem 8 (model IA∧α): when the adversary fixes the port assignment to
// an arbitrary permutation of the neighbours and neighbours are unknown,
// every correct shortest-path routing function must reproduce that
// permutation — |F(u)| ≥ log₂(d(u)!) ≈ (n/2)·log(n/2) bits per node.
//
// The demonstration: query the serialized table of node u with each
// neighbour's label; a shortest-path function must answer the direct port,
// so the full port permutation is recovered from F(u) alone. Counting the
// d! possible assignments gives the bound, computed exactly here.
#pragma once

#include <vector>

#include "graph/ports.hpp"
#include "schemes/full_table.hpp"

namespace optrt::incompress {

/// Recovers, for each neighbour of `u` in increasing order, the port F(u)
/// assigns it — reading only the table bits.
[[nodiscard]] std::vector<graph::PortId> recover_port_permutation(
    const schemes::FullTableScheme& scheme, graph::NodeId u,
    const std::vector<graph::NodeId>& sorted_neighbors);

/// log₂(d!) via exact big-integer factorial bit length is overkill; the
/// Stirling-exact lgamma form is used: log₂ Γ(d+1).
[[nodiscard]] double log2_factorial(std::size_t d) noexcept;

}  // namespace optrt::incompress
