// Whole-graph enumerative compressor: a practical upper bound on
// C(E(G) | n).
//
// Each node's *forward row* (edge bits toward higher ids) is coded as
// (weight, index-in-ensemble) — the Lemma 1 technique applied to every
// row. On Kolmogorov random graphs the weights are ≈ half the row length
// and nothing compresses (within ~½ log per row, as incompressibility
// demands); on structured graphs (chains, stars, grids, G_B) the ensemble
// indices collapse and savings are dramatic — a direct, decodable view of
// randomness deficiency.
#pragma once

#include <cstddef>

#include "bitio/bit_vector.hpp"
#include "graph/graph.hpp"

namespace optrt::incompress {

/// Compresses E(G); decodable given n.
[[nodiscard]] bitio::BitVector compress_graph(const graph::Graph& g);

/// Exact inverse.
[[nodiscard]] graph::Graph decompress_graph(const bitio::BitVector& bits,
                                            std::size_t n);

/// Convenience: compressed size in bits.
[[nodiscard]] std::size_t compressed_graph_bits(const graph::Graph& g);

}  // namespace optrt::incompress
