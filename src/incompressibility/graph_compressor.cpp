#include "incompressibility/graph_compressor.hpp"

#include "bitio/bit_stream.hpp"
#include "incompressibility/enumerative.hpp"

namespace optrt::incompress {

bitio::BitVector compress_graph(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  bitio::BitWriter w;
  for (graph::NodeId u = 0; u + 1 < n; ++u) {
    bitio::BitVector row;
    for (graph::NodeId v = u + 1; v < n; ++v) row.push_back(g.has_edge(u, v));
    write_fixed_weight(w, row);
  }
  return w.take();
}

graph::Graph decompress_graph(const bitio::BitVector& bits, std::size_t n) {
  bitio::BitReader r(bits);
  graph::Graph g(n);
  for (graph::NodeId u = 0; u + 1 < n; ++u) {
    const bitio::BitVector row = read_fixed_weight(r, n - 1 - u);
    for (graph::NodeId v = u + 1; v < n; ++v) {
      if (row.get(v - u - 1)) g.add_edge(u, v);
    }
  }
  return g;
}

std::size_t compressed_graph_bits(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  std::size_t total = 0;
  for (graph::NodeId u = 0; u + 1 < n; ++u) {
    std::size_t weight = 0;
    for (graph::NodeId v : g.neighbors(u)) {
      if (v > u) ++weight;
    }
    total += fixed_weight_total_bits(n - 1 - u, weight);
  }
  return total;
}

}  // namespace optrt::incompress
