#include "incompressibility/biguint.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace optrt::incompress {

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::size_t BigUint::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * 64 +
         static_cast<std::size_t>(std::bit_width(limbs_.back()));
}

bool BigUint::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1u;
}

BigUint& BigUint::operator+=(const BigUint& other) {
  if (other.limbs_.size() > limbs_.size()) {
    limbs_.resize(other.limbs_.size(), 0);
  }
  unsigned carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const std::uint64_t sum = limbs_[i] + b;
    const unsigned c1 = sum < limbs_[i] ? 1u : 0u;
    const std::uint64_t sum2 = sum + carry;
    const unsigned c2 = sum2 < sum ? 1u : 0u;
    limbs_[i] = sum2;
    carry = c1 + c2;
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& other) {
  if (compare(other) == std::strong_ordering::less) {
    throw std::underflow_error("BigUint: subtraction underflow");
  }
  unsigned borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const std::uint64_t diff = limbs_[i] - b;
    const unsigned b1 = limbs_[i] < b ? 1u : 0u;
    const std::uint64_t diff2 = diff - borrow;
    const unsigned b2 = diff < borrow ? 1u : 0u;
    limbs_[i] = diff2;
    borrow = b1 + b2;
  }
  trim();
  return *this;
}

BigUint& BigUint::mul_small(std::uint64_t factor) {
  if (factor == 0 || limbs_.empty()) {
    limbs_.clear();
    return *this;
  }
  // 64×64 → 128 multiply per limb.
  unsigned __int128 carry = 0;
  for (auto& limb : limbs_) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(limb) * factor + carry;
    limb = static_cast<std::uint64_t>(prod);
    carry = prod >> 64;
  }
  while (carry != 0) {
    limbs_.push_back(static_cast<std::uint64_t>(carry));
    carry >>= 64;
  }
  return *this;
}

std::uint64_t BigUint::div_small(std::uint64_t divisor) {
  if (divisor == 0) throw std::invalid_argument("BigUint: divide by zero");
  unsigned __int128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const unsigned __int128 cur = (rem << 64) | limbs_[i];
    limbs_[i] = static_cast<std::uint64_t>(cur / divisor);
    rem = cur % divisor;
  }
  trim();
  return static_cast<std::uint64_t>(rem);
}

std::strong_ordering BigUint::compare(const BigUint& other) const noexcept {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

double BigUint::to_double() const noexcept {
  double value = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = value * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return value;
}

std::string BigUint::to_string() const {
  if (limbs_.empty()) return "0";
  BigUint copy = *this;
  std::string digits;
  while (!copy.is_zero()) {
    digits.push_back(static_cast<char>('0' + copy.div_small(10)));
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigUint binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return BigUint(0);
  k = std::min(k, n - k);
  BigUint result(1);
  // C(n, k) = Π_{i=1..k} (n−k+i)/i; each prefix product is itself a
  // binomial coefficient, so div_small is always exact.
  for (std::uint64_t i = 1; i <= k; ++i) {
    result.mul_small(n - k + i);
    result.div_small(i);
  }
  return result;
}

}  // namespace optrt::incompress
