#include "incompressibility/theorem6.hpp"

#include <algorithm>

#include "bitio/bit_stream.hpp"
#include "bitio/codes.hpp"
#include "graph/encoding.hpp"

namespace optrt::incompress {

namespace {

using bitio::BitReader;
using bitio::BitWriter;

unsigned id_width(std::size_t n) {
  return bitio::ceil_log2(std::max<std::size_t>(n, 2));
}

}  // namespace

std::ptrdiff_t Theorem6Result::implied_function_lower_bound() const noexcept {
  // description = overhead + |F| + (|E(G)| − row − deleted). If E(G) is
  // incompressible then |description| ≥ |E(G)|, i.e. |F| ≥ deleted + row −
  // overhead = savings + |F| evaluated on our own F — independent of which
  // F was plugged in, since overhead and deleted depend only on G and u.
  return description.savings() + static_cast<std::ptrdiff_t>(function_bits);
}

Theorem6Result theorem6_encode(const graph::Graph& g, NodeId u,
                               const schemes::CompactNodeOptions& opt) {
  const std::size_t n = g.node_count();
  schemes::CompactNodeOptions node_opt = opt;
  node_opt.include_adjacency = false;  // model II: row is shipped separately

  const schemes::CompactNodeBits fn = schemes::build_compact_node(g, u, node_opt);
  const auto nbrs = g.neighbors(u);
  const schemes::DecodedCompactNode decoded = schemes::decode_compact_node(
      fn.bits, n, u, node_opt, std::vector<NodeId>(nbrs.begin(), nbrs.end()));

  Theorem6Result result;
  result.function_bits = fn.bits.size();

  BitWriter w;
  w.write_bits(u, id_width(n));
  // u's incidence row, literal.
  for (NodeId v = 0; v < n; ++v) {
    if (v != u) w.write_bit(g.has_edge(u, v));
  }
  // F(u), length-prefixed with the paper's self-delimiting prime code.
  bitio::write_prime(w, fn.bits.size());
  w.write_vector(fn.bits);
  result.overhead_bits = w.bit_count() - fn.bits.size();

  // Deleted positions: for every non-neighbour w', the edge
  // {intermediary(w'), w'} — present by construction.
  std::vector<bool> deleted(n * (n - 1) / 2, false);
  for (NodeId v = 0; v < n; ++v) {
    if (v == u || g.has_edge(u, v)) continue;
    const NodeId mid = decoded.next_of[v];
    deleted[graph::edge_index(n, mid, v)] = true;
    ++result.deleted_edge_bits;
  }

  std::size_t index = 0;
  for (NodeId a = 0; a + 1 < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b, ++index) {
      if (a == u || b == u || deleted[index]) continue;
      w.write_bit(g.has_edge(a, b));
    }
  }
  result.description = Description{w.take(), n * (n - 1) / 2};
  return result;
}

graph::Graph theorem6_decode(const bitio::BitVector& bits, std::size_t n,
                             const schemes::CompactNodeOptions& opt) {
  schemes::CompactNodeOptions node_opt = opt;
  node_opt.include_adjacency = false;

  BitReader r(bits);
  const auto u = static_cast<NodeId>(r.read_bits(id_width(n)));
  std::vector<NodeId> neighbors;
  std::vector<bool> is_neighbor(n, false);
  for (NodeId v = 0; v < n; ++v) {
    if (v == u) continue;
    if (r.read_bit()) {
      neighbors.push_back(v);
      is_neighbor[v] = true;
    }
  }
  const auto fn_len = static_cast<std::size_t>(bitio::read_prime(r));
  bitio::BitVector fn_bits;
  for (std::size_t i = 0; i < fn_len; ++i) fn_bits.push_back(r.read_bit());

  const schemes::DecodedCompactNode decoded =
      schemes::decode_compact_node(fn_bits, n, u, node_opt, neighbors);

  graph::Graph g(n);
  for (NodeId v : neighbors) g.add_edge(u, v);
  // Edges recovered from the routing function.
  std::vector<bool> known(n * (n - 1) / 2, false);
  for (NodeId v = 0; v < n; ++v) {
    if (v == u || is_neighbor[v]) continue;
    const NodeId mid = decoded.next_of[v];
    const std::size_t idx = graph::edge_index(n, mid, v);
    known[idx] = true;
    g.add_edge(mid, v);
  }
  std::size_t index = 0;
  for (NodeId a = 0; a + 1 < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b, ++index) {
      if (a == u || b == u || known[index]) continue;
      if (r.read_bit()) g.add_edge(a, b);
    }
  }
  return g;
}

}  // namespace optrt::incompress
