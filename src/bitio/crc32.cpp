#include "bitio/crc32.hpp"

#include <array>

namespace optrt::bitio {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

constexpr std::uint32_t update(std::uint32_t crc, std::uint8_t byte) noexcept {
  return kCrcTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed) noexcept {
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) crc = update(crc, data[i]);
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const BitVector& bits) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  // Bit length first: distinguishes strings that pack to equal bytes.
  const std::uint64_t n = bits.size();
  for (int i = 0; i < 8; ++i) {
    crc = update(crc, static_cast<std::uint8_t>(n >> (8 * i)));
  }
  std::uint8_t current = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.get(i)) current |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      crc = update(crc, current);
      current = 0;
    }
  }
  if (bits.size() % 8 != 0) crc = update(crc, current);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace optrt::bitio
