#include "bitio/arith.hpp"

namespace optrt::bitio {

namespace {

// 32-bit carry-less range coder over the binary alphabet with the
// Krichevsky–Trofimov estimator p(1) = (ones + ½) / (total + 1),
// implemented in integer arithmetic as (2·ones + 1) / (2·total + 2).
constexpr std::uint64_t kTop = std::uint64_t{1} << 32;
constexpr std::uint64_t kHalf = kTop >> 1;
constexpr std::uint64_t kQuarter = kTop >> 2;
constexpr std::uint64_t kThreeQuarters = kHalf + kQuarter;

struct KtModel {
  std::uint64_t ones = 0;
  std::uint64_t total = 0;

  /// Range split point for the next symbol: width of the "0" region.
  [[nodiscard]] std::uint64_t zero_width(std::uint64_t range) const {
    // p(0) = (2·zeros + 1) / (2·total + 2); keep at least 1 unit per side.
    const std::uint64_t zeros = total - ones;
    std::uint64_t width =
        range / (2 * total + 2) * (2 * zeros + 1);
    if (width == 0) width = 1;
    if (width >= range) width = range - 1;
    return width;
  }

  void update(bool bit) {
    if (bit) ++ones;
    ++total;
  }
};

}  // namespace

BitVector arithmetic_encode(const BitVector& bits) {
  BitWriter out;
  std::uint64_t low = 0;
  std::uint64_t high = kTop - 1;
  std::size_t pending = 0;
  KtModel model;

  auto emit = [&out, &pending](bool bit) {
    out.write_bit(bit);
    for (; pending > 0; --pending) out.write_bit(!bit);
  };

  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool bit = bits.get(i);
    const std::uint64_t range = high - low + 1;
    const std::uint64_t split = model.zero_width(range);
    if (bit) {
      low += split;
    } else {
      high = low + split - 1;
    }
    model.update(bit);
    // Renormalize.
    while (true) {
      if (high < kHalf) {
        emit(false);
      } else if (low >= kHalf) {
        emit(true);
        low -= kHalf;
        high -= kHalf;
      } else if (low >= kQuarter && high < kThreeQuarters) {
        ++pending;
        low -= kQuarter;
        high -= kQuarter;
      } else {
        break;
      }
      low <<= 1;
      high = (high << 1) | 1;
    }
  }
  // Flush: disambiguate the final interval.
  ++pending;
  emit(low >= kQuarter);
  return out.take();
}

BitVector arithmetic_decode(const BitVector& code, std::size_t count) {
  BitVector out;
  std::uint64_t low = 0;
  std::uint64_t high = kTop - 1;
  std::uint64_t value = 0;
  std::size_t pos = 0;
  auto next_code_bit = [&code, &pos]() -> std::uint64_t {
    return pos < code.size() ? (code.get(pos++) ? 1u : 0u) : 0u;
  };
  for (int i = 0; i < 32; ++i) value = (value << 1) | next_code_bit();
  KtModel model;

  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t range = high - low + 1;
    const std::uint64_t split = model.zero_width(range);
    const bool bit = value - low >= split;
    out.push_back(bit);
    if (bit) {
      low += split;
    } else {
      high = low + split - 1;
    }
    model.update(bit);
    while (true) {
      if (high < kHalf) {
        // nothing
      } else if (low >= kHalf) {
        low -= kHalf;
        high -= kHalf;
        value -= kHalf;
      } else if (low >= kQuarter && high < kThreeQuarters) {
        low -= kQuarter;
        high -= kQuarter;
        value -= kQuarter;
      } else {
        break;
      }
      low <<= 1;
      high = (high << 1) | 1;
      value = (value << 1) | next_code_bit();
    }
  }
  return out;
}

std::size_t arithmetic_coded_bits(const BitVector& bits) {
  return arithmetic_encode(bits).size();
}

}  // namespace optrt::bitio
