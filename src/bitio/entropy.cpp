#include "bitio/entropy.hpp"

#include <algorithm>
#include <cmath>

#include "bitio/arith.hpp"
#include "bitio/codes.hpp"

namespace optrt::bitio {

double empirical_entropy(const BitVector& bits) noexcept {
  const std::size_t n = bits.size();
  if (n == 0) return 0.0;
  const std::size_t ones = bits.popcount();
  if (ones == 0 || ones == n) return 0.0;
  const double p = static_cast<double>(ones) / static_cast<double>(n);
  return -p * std::log2(p) - (1 - p) * std::log2(1 - p);
}

double entropy_coded_bits(const BitVector& bits) noexcept {
  const double model_cost = ceil_log2_plus1(bits.size());
  return static_cast<double>(bits.size()) * empirical_entropy(bits) +
         model_cost;
}

namespace {

// LZ78 parse over the binary alphabet. Phrases are nodes of a trie with at
// most two children; we store the trie as a flat vector.
struct TrieNode {
  std::size_t child[2] = {0, 0};  // 0 = absent (root is index 0).
};

}  // namespace

std::size_t lz78_phrase_count(const BitVector& bits) {
  std::vector<TrieNode> trie(1);
  std::size_t phrases = 0;
  std::size_t node = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const int b = bits.get(i) ? 1 : 0;
    if (trie[node].child[b] != 0) {
      node = trie[node].child[b];
    } else {
      trie[node].child[b] = trie.size();
      trie.emplace_back();
      ++phrases;
      node = 0;
    }
  }
  if (node != 0) ++phrases;  // trailing partial phrase
  return phrases;
}

std::size_t lz78_coded_bits(const BitVector& bits) {
  std::vector<TrieNode> trie(1);
  std::size_t cost = 0;
  std::size_t phrases = 0;
  std::size_t node = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const int b = bits.get(i) ? 1 : 0;
    if (trie[node].child[b] != 0) {
      node = trie[node].child[b];
    } else {
      trie[node].child[b] = trie.size();
      trie.emplace_back();
      ++phrases;
      // Each phrase is (index of parent phrase, next bit): the parent index
      // ranges over {0..phrases-1} so costs ceil(log2(phrases)) bits, plus
      // one literal bit.
      cost += ceil_log2(phrases) + 1;
      node = 0;
    }
  }
  if (node != 0) {
    ++phrases;
    cost += ceil_log2(phrases) + 1;
  }
  return cost;
}

double complexity_upper_bound(const BitVector& bits) {
  const double literal = static_cast<double>(bits.size());
  const double entropy = entropy_coded_bits(bits);
  const double lz = static_cast<double>(lz78_coded_bits(bits));
  const double arith = static_cast<double>(arithmetic_coded_bits(bits));
  return std::min({literal, entropy, lz, arith}) + 2.0;
}

}  // namespace optrt::bitio
