// Empirical-entropy and compression-based estimators.
//
// Kolmogorov complexity C(x) is uncomputable; the paper's arguments only
// ever need (a) "an effective description of length L exists, hence
// C(x) <= L + O(1)" and (b) counting. These estimators give computable
// *upper bounds* on C(x) used for reporting in the benches (never as
// evidence inside a proof codec): order-0 empirical entropy of the bit
// string and an LZ78 parse cost.
#pragma once

#include <cstddef>

#include "bitio/bit_vector.hpp"

namespace optrt::bitio {

/// Order-0 empirical entropy (bits per symbol, in [0,1]) of a bit string.
[[nodiscard]] double empirical_entropy(const BitVector& bits) noexcept;

/// Order-0 entropy-coded size in bits: size() * H0 plus the cost of the
/// model (one count in ceil(log2(size+1)) bits).
[[nodiscard]] double entropy_coded_bits(const BitVector& bits) noexcept;

/// Number of phrases in the LZ78 parse of the bit string.
[[nodiscard]] std::size_t lz78_phrase_count(const BitVector& bits);

/// LZ78 coded size in bits: sum over phrases i of (ceil(log2 i) + 1).
[[nodiscard]] std::size_t lz78_coded_bits(const BitVector& bits);

/// A computable upper-bound proxy for C(x): min of the literal length,
/// entropy-coded size, and LZ78 size (plus a small header distinguishing
/// the three, charged as 2 bits).
[[nodiscard]] double complexity_upper_bound(const BitVector& bits);

}  // namespace optrt::bitio
