// Sequential bit readers/writers over BitVector.
//
// BitWriter builds descriptions (routing functions, proof codecs); BitReader
// consumes them. Readers throw std::out_of_range when a description is
// exhausted — a malformed description is a logic error in this library, not
// an expected input condition.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "bitio/bit_vector.hpp"

namespace optrt::bitio {

/// Appends bits to an owned BitVector.
class BitWriter {
 public:
  BitWriter() = default;

  void write_bit(bool b) { bits_.push_back(b); }

  /// Writes the low `width` bits of `value`, least-significant first.
  void write_bits(std::uint64_t value, unsigned width) {
    bits_.append_bits(value, width);
  }

  void write_vector(const BitVector& v) { bits_.append(v); }

  [[nodiscard]] std::size_t bit_count() const noexcept { return bits_.size(); }

  /// Takes the accumulated bits; the writer is left empty.
  [[nodiscard]] BitVector take() { return std::move(bits_); }

  [[nodiscard]] const BitVector& bits() const noexcept { return bits_; }

 private:
  BitVector bits_;
};

/// Reads bits sequentially from a BitVector it does not own.
class BitReader {
 public:
  explicit BitReader(const BitVector& bits) : bits_(&bits) {}

  [[nodiscard]] bool read_bit() {
    if (pos_ >= bits_->size()) throw std::out_of_range("BitReader: past end");
    return bits_->get(pos_++);
  }

  /// Reads `width` bits, least-significant first.
  [[nodiscard]] std::uint64_t read_bits(unsigned width) {
    if (width > 64) throw std::invalid_argument("read_bits: width > 64");
    std::uint64_t value = 0;
    for (unsigned i = 0; i < width; ++i) {
      value |= static_cast<std::uint64_t>(read_bit()) << i;
    }
    return value;
  }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bits_->size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= bits_->size(); }

  /// Jumps to absolute bit offset `pos`.
  void seek(std::size_t pos) {
    if (pos > bits_->size()) throw std::out_of_range("BitReader::seek past end");
    pos_ = pos;
  }

 private:
  const BitVector* bits_;
  std::size_t pos_ = 0;
};

}  // namespace optrt::bitio
