#include "bitio/bit_vector.hpp"

#include <bit>
#include <stdexcept>

namespace optrt::bitio {

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v;
  for (char c : bits) {
    if (c == '0') {
      v.push_back(false);
    } else if (c == '1') {
      v.push_back(true);
    } else {
      throw std::invalid_argument("BitVector::from_string: expected '0' or '1'");
    }
  }
  return v;
}

void BitVector::append_bits(std::uint64_t value, unsigned width) {
  if (width > 64) throw std::invalid_argument("append_bits: width > 64");
  for (unsigned i = 0; i < width; ++i) push_back((value >> i) & 1u);
}

void BitVector::append(const BitVector& other) {
  for (std::size_t i = 0; i < other.size(); ++i) push_back(other.get(i));
}

std::size_t BitVector::popcount() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

}  // namespace optrt::bitio
