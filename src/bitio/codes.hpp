// Prefix codes used throughout the paper and the proof codecs.
//
// Definition 4 of the paper introduces two self-delimiting codes:
//   x̄  = 1^{|x|} 0 x           with |x̄| = 2|x| + 1            (code "bar")
//   x′ = |x|̄ x                 with |x′| = |x| + 2⌈log(|x|+1)⌉ + 1  ("prime")
// where |x| is the bit length of x. The paper identifies N with {0,1}* by
// the correspondence (0,ε), (1,"0"), (2,"1"), (3,"00"), (4,"01"), … — i.e. a
// natural number n maps to the binary expansion of n+1 with the leading 1
// removed. We implement exactly that correspondence so description lengths
// match the paper's accounting.
//
// Also provided: unary (the Theorem-1 first-table code), fixed width, and
// Elias gamma/delta for general tooling.
#pragma once

#include <cstdint>
#include <string>

#include "bitio/bit_stream.hpp"

namespace optrt::bitio {

/// Bit length |n| of a natural number under the paper's N <-> {0,1}*
/// correspondence: |0| = 0, |1| = |2| = 1, |3|..|6| = 2, ...
/// Equivalently floor(log2(n+1)).
[[nodiscard]] unsigned natural_bit_length(std::uint64_t n) noexcept;

/// The binary-string image of `n` under the correspondence (low bit first
/// in the returned value; natural_bit_length(n) bits are significant).
[[nodiscard]] std::uint64_t natural_to_bits(std::uint64_t n) noexcept;

/// Inverse of natural_to_bits for a `width`-bit string.
[[nodiscard]] std::uint64_t bits_to_natural(std::uint64_t bits,
                                            unsigned width) noexcept;

// --- Definition 4: the "bar" code x̄ = 1^{|x|} 0 x --------------------------

/// Encodes natural `n` as 1^{|x|} 0 x where x is the string image of n.
void write_bar(BitWriter& w, std::uint64_t n);
[[nodiscard]] std::uint64_t read_bar(BitReader& r);
/// Code length 2|x| + 1.
[[nodiscard]] std::size_t bar_length(std::uint64_t n) noexcept;

// --- Definition 4: the shorter "prime" code x′ = |x|̄ x ---------------------

/// Encodes natural `n` as bar(|x|) followed by x.
void write_prime(BitWriter& w, std::uint64_t n);
[[nodiscard]] std::uint64_t read_prime(BitReader& r);
/// Code length |x| + 2|log(|x|+1)| + 1 (exactly, under the correspondence).
[[nodiscard]] std::size_t prime_length(std::uint64_t n) noexcept;

// --- Unary code: n encoded as 1^n 0 (Theorem 1 first table) ----------------

void write_unary(BitWriter& w, std::uint64_t n);
[[nodiscard]] std::uint64_t read_unary(BitReader& r);
[[nodiscard]] inline std::size_t unary_length(std::uint64_t n) noexcept {
  return static_cast<std::size_t>(n) + 1;
}

// --- Elias gamma / delta ----------------------------------------------------

/// Elias gamma code of n >= 1: floor(log2 n) zeros, then n's binary digits.
void write_elias_gamma(BitWriter& w, std::uint64_t n);
[[nodiscard]] std::uint64_t read_elias_gamma(BitReader& r);
[[nodiscard]] std::size_t elias_gamma_length(std::uint64_t n) noexcept;

/// Elias delta code of n >= 1.
void write_elias_delta(BitWriter& w, std::uint64_t n);
[[nodiscard]] std::uint64_t read_elias_delta(BitReader& r);
[[nodiscard]] std::size_t elias_delta_length(std::uint64_t n) noexcept;

// --- Fixed width ------------------------------------------------------------

/// ⌈log2(n+1)⌉ — the paper's "log n" (footnote 6): bits to write a value in
/// {0..n} at fixed width.
[[nodiscard]] unsigned ceil_log2_plus1(std::uint64_t n) noexcept;

/// ⌈log2 n⌉ for n >= 1; bits to index one of n alternatives.
[[nodiscard]] unsigned ceil_log2(std::uint64_t n) noexcept;

}  // namespace optrt::bitio
