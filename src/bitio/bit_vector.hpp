// BitVector: a growable sequence of bits, the unit of account for every
// routing-function size in this library.
//
// The paper measures the space of a routing scheme as the sum over all nodes
// of the number of bits needed to encode the local routing function (§1).
// Every scheme in src/schemes serializes its local routing functions into
// BitVectors and routes by decoding them, so BitVector::size() is the honest
// space cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace optrt::bitio {

/// A dynamically sized bit string. Bit 0 is the first bit appended.
class BitVector {
 public:
  BitVector() = default;

  /// Constructs a bit vector of `n` bits, all zero.
  explicit BitVector(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  BitVector(const BitVector&) = default;
  BitVector& operator=(const BitVector&) = default;
  // Moved-from vectors must be empty (size_ is scalar: the default move
  // would leave a nonzero size over vacated storage).
  BitVector(BitVector&& other) noexcept
      : size_(other.size_), words_(std::move(other.words_)) {
    other.size_ = 0;
    other.words_.clear();
  }
  BitVector& operator=(BitVector&& other) noexcept {
    size_ = other.size_;
    words_ = std::move(other.words_);
    other.size_ = 0;
    other.words_.clear();
    return *this;
  }

  /// Parses a string of '0'/'1' characters (useful in tests).
  static BitVector from_string(const std::string& bits);

  /// Number of bits stored.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Reads the bit at `i`. Precondition: i < size().
  [[nodiscard]] bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets the bit at `i`. Precondition: i < size().
  void set(std::size_t i, bool value) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Appends one bit.
  void push_back(bool value) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (value) words_[size_ >> 6] |= std::uint64_t{1} << (size_ & 63);
    ++size_;
  }

  /// Appends the low `width` bits of `value`, least-significant bit first.
  void append_bits(std::uint64_t value, unsigned width);

  /// Appends all bits of `other`.
  void append(const BitVector& other);

  /// Number of one-bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Renders as a '0'/'1' string (tests and debugging).
  [[nodiscard]] std::string to_string() const;

  /// Raw 64-bit words (tail bits beyond size() are zero).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  friend bool operator==(const BitVector& a, const BitVector& b) noexcept {
    if (a.size_ != b.size_) return false;
    return a.words_ == b.words_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace optrt::bitio
