#include "bitio/codes.hpp"

#include <bit>

namespace optrt::bitio {

unsigned natural_bit_length(std::uint64_t n) noexcept {
  // floor(log2(n+1)); n+1 never overflows to 0 for n < 2^64-1, and the
  // library never encodes naturals that large.
  return static_cast<unsigned>(std::bit_width(n + 1) - 1);
}

std::uint64_t natural_to_bits(std::uint64_t n) noexcept {
  // The string image of n is the binary expansion of n+1 minus the leading 1.
  const unsigned len = natural_bit_length(n);
  const std::uint64_t m = n + 1;
  // Take the low `len` bits of m; reverse so the most significant string
  // character comes first when written LSB-first.
  std::uint64_t out = 0;
  for (unsigned i = 0; i < len; ++i) {
    const bool bit = (m >> (len - 1 - i)) & 1u;
    out |= static_cast<std::uint64_t>(bit) << i;
  }
  return out;
}

std::uint64_t bits_to_natural(std::uint64_t bits, unsigned width) noexcept {
  std::uint64_t m = 1;
  for (unsigned i = 0; i < width; ++i) {
    m = (m << 1) | ((bits >> i) & 1u);
  }
  return m - 1;
}

void write_bar(BitWriter& w, std::uint64_t n) {
  const unsigned len = natural_bit_length(n);
  for (unsigned i = 0; i < len; ++i) w.write_bit(true);
  w.write_bit(false);
  w.write_bits(natural_to_bits(n), len);
}

std::uint64_t read_bar(BitReader& r) {
  unsigned len = 0;
  while (r.read_bit()) ++len;
  const std::uint64_t bits = r.read_bits(len);
  return bits_to_natural(bits, len);
}

std::size_t bar_length(std::uint64_t n) noexcept {
  return 2 * static_cast<std::size_t>(natural_bit_length(n)) + 1;
}

void write_prime(BitWriter& w, std::uint64_t n) {
  const unsigned len = natural_bit_length(n);
  write_bar(w, len);
  w.write_bits(natural_to_bits(n), len);
}

std::uint64_t read_prime(BitReader& r) {
  const auto len = static_cast<unsigned>(read_bar(r));
  const std::uint64_t bits = r.read_bits(len);
  return bits_to_natural(bits, len);
}

std::size_t prime_length(std::uint64_t n) noexcept {
  const unsigned len = natural_bit_length(n);
  return bar_length(len) + len;
}

void write_unary(BitWriter& w, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) w.write_bit(true);
  w.write_bit(false);
}

std::uint64_t read_unary(BitReader& r) {
  std::uint64_t n = 0;
  while (r.read_bit()) ++n;
  return n;
}

void write_elias_gamma(BitWriter& w, std::uint64_t n) {
  // n >= 1. N = floor(log2 n) zeros, then the N+1 binary digits of n
  // (most significant first).
  const unsigned digits = static_cast<unsigned>(std::bit_width(n));
  for (unsigned i = 0; i + 1 < digits; ++i) w.write_bit(false);
  for (unsigned i = digits; i-- > 0;) w.write_bit((n >> i) & 1u);
}

std::uint64_t read_elias_gamma(BitReader& r) {
  unsigned zeros = 0;
  while (!r.read_bit()) ++zeros;
  std::uint64_t n = 1;
  for (unsigned i = 0; i < zeros; ++i) n = (n << 1) | r.read_bit();
  return n;
}

std::size_t elias_gamma_length(std::uint64_t n) noexcept {
  return 2 * static_cast<std::size_t>(std::bit_width(n)) - 1;
}

void write_elias_delta(BitWriter& w, std::uint64_t n) {
  const unsigned digits = static_cast<unsigned>(std::bit_width(n));
  write_elias_gamma(w, digits);
  for (unsigned i = digits - 1; i-- > 0;) w.write_bit((n >> i) & 1u);
}

std::uint64_t read_elias_delta(BitReader& r) {
  const auto digits = static_cast<unsigned>(read_elias_gamma(r));
  std::uint64_t n = 1;
  for (unsigned i = 0; i + 1 < digits; ++i) n = (n << 1) | r.read_bit();
  return n;
}

std::size_t elias_delta_length(std::uint64_t n) noexcept {
  const unsigned digits = static_cast<unsigned>(std::bit_width(n));
  return elias_gamma_length(digits) + digits - 1;
}

unsigned ceil_log2_plus1(std::uint64_t n) noexcept {
  return static_cast<unsigned>(std::bit_width(n));
}

unsigned ceil_log2(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  return static_cast<unsigned>(std::bit_width(n - 1));
}

}  // namespace optrt::bitio
