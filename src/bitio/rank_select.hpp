// Succinct rank/select directory over a BitVector — the query-side
// counterpart of the entropy-bound tables.
//
// The paper compresses routing tables to the incompressibility bound; the
// only way to *query* such bit strings fast is an o(n)-bit index giving
// O(1) rank (broadword, rank9-style: one absolute count per 512-bit block
// plus seven 9-bit within-block subcounts packed into a single word) and
// near-O(1) select (one sampled block hint per 512 matching bits, then a
// bounded block/word scan). The fast routing paths of src/model/fastpath
// use rank to turn "position among the non-neighbours / vicinity members"
// into a direct index into a bit-packed value array — no sequential
// BitReader re-decoding on the hot path.
//
// Index overhead: 128 bits per 512-bit block (25%) plus the select
// samples; construction is one linear pass. All queries are O(1) except
// select's bounded scan of at most one block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bitio/bit_vector.hpp"

namespace optrt::bitio {

/// An immutable bit-vector with constant-time rank and sampled select.
class RankSelect {
 public:
  RankSelect() = default;

  /// Takes (a copy of) the bits and builds the directory in one pass.
  explicit RankSelect(BitVector bits);

  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }
  [[nodiscard]] std::size_t ones() const noexcept { return ones_; }
  [[nodiscard]] std::size_t zeros() const noexcept {
    return bits_.size() - ones_;
  }
  [[nodiscard]] bool get(std::size_t i) const noexcept { return bits_.get(i); }
  [[nodiscard]] const BitVector& bits() const noexcept { return bits_; }

  /// Number of one-bits in [0, i). Precondition: i <= size(); throws
  /// std::out_of_range beyond.
  [[nodiscard]] std::size_t rank1(std::size_t i) const;
  /// Number of zero-bits in [0, i).
  [[nodiscard]] std::size_t rank0(std::size_t i) const;

  /// Position of the k-th one-bit (k = 0 is the first). Throws
  /// std::out_of_range when k >= ones().
  [[nodiscard]] std::size_t select1(std::size_t k) const;
  /// Position of the k-th zero-bit. Throws std::out_of_range when
  /// k >= zeros().
  [[nodiscard]] std::size_t select0(std::size_t k) const;

 private:
  // 512-bit blocks: absolute rank before the block, plus the seven
  // cumulative within-block word subcounts at 9 bits each.
  static constexpr std::size_t kBlockBits = 512;
  static constexpr std::size_t kWordsPerBlock = kBlockBits / 64;
  static constexpr std::size_t kSelectSample = 512;

  [[nodiscard]] std::size_t block_count() const noexcept {
    return block_rank_.size();
  }
  [[nodiscard]] std::uint64_t word(std::size_t w) const noexcept;
  /// Ones before word `w` of block `b` (relative to the block start).
  [[nodiscard]] std::size_t sub_rank(std::size_t b,
                                     std::size_t w) const noexcept {
    return w == 0 ? 0 : (sub_rank_[b] >> (9 * (w - 1))) & 0x1ff;
  }

  BitVector bits_;
  std::size_t ones_ = 0;
  std::vector<std::uint64_t> block_rank_;  // ones before each block
  std::vector<std::uint64_t> sub_rank_;    // packed 9-bit word subcounts
  // Block index containing the (k·kSelectSample)-th one/zero bit.
  std::vector<std::uint32_t> select1_hint_;
  std::vector<std::uint32_t> select0_hint_;
};

}  // namespace optrt::bitio
