// Adaptive binary arithmetic coding (Krichevsky–Trofimov estimator).
//
// The strongest computable stand-in for the incompressibility estimator:
// codes a bit string to within ≈ ½·log n bits of its order-0 empirical
// entropy without two passes, and decodes exactly. Used by the complexity
// estimator and available as a general substrate codec.
#pragma once

#include <cstdint>

#include "bitio/bit_stream.hpp"
#include "bitio/bit_vector.hpp"

namespace optrt::bitio {

/// Encodes `bits` with an adaptive KT model. The decoder must be told the
/// original length.
[[nodiscard]] BitVector arithmetic_encode(const BitVector& bits);

/// Decodes `count` bits from an arithmetic_encode output.
[[nodiscard]] BitVector arithmetic_decode(const BitVector& code,
                                          std::size_t count);

/// Coded size in bits (encode and measure).
[[nodiscard]] std::size_t arithmetic_coded_bits(const BitVector& bits);

}  // namespace optrt::bitio
