// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over bytes and
// BitVectors.
//
// The artifact container in schemes/serialization frames every serialized
// routing scheme with a CRC32 of its payload bits, so a single flipped bit
// anywhere in the payload is caught before any decoder runs. The BitVector
// overload packs bits into bytes least-significant-bit first — the same
// convention as schemes::to_bytes — so the checksum of an artifact's bits
// equals the checksum of its on-disk payload bytes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "bitio/bit_vector.hpp"

namespace optrt::bitio {

/// CRC-32 of `len` bytes, continuing from `seed` (pass the previous return
/// value to checksum a split buffer; 0 starts a fresh checksum).
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                                  std::uint32_t seed = 0) noexcept;

/// CRC-32 of a bit string, packed LSB-first into bytes (the final partial
/// byte, if any, is zero-padded high). Includes the bit length in the
/// checksum so e.g. "0" and "00" hash differently.
[[nodiscard]] std::uint32_t crc32(const BitVector& bits) noexcept;

}  // namespace optrt::bitio
