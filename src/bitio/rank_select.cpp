#include "bitio/rank_select.hpp"

#include <bit>
#include <stdexcept>

namespace optrt::bitio {

namespace {

/// Position (0-based) of the k-th set bit of `w`. Precondition:
/// k < popcount(w). Byte-wise scan, then a bit scan within the byte.
std::size_t word_select1(std::uint64_t w, std::size_t k) {
  for (std::size_t byte = 0; byte < 8; ++byte) {
    const auto b = static_cast<unsigned>((w >> (8 * byte)) & 0xff);
    const auto count = static_cast<std::size_t>(std::popcount(b));
    if (k < count) {
      unsigned rest = b;
      for (std::size_t j = 0; j < k; ++j) rest &= rest - 1;  // clear k lowest
      return 8 * byte +
             static_cast<std::size_t>(std::countr_zero(rest));
    }
    k -= count;
  }
  return 64;  // unreachable when the precondition holds
}

}  // namespace

RankSelect::RankSelect(BitVector bits) : bits_(std::move(bits)) {
  const std::size_t nbits = bits_.size();
  const std::size_t nblocks = (nbits + kBlockBits - 1) / kBlockBits;
  block_rank_.assign(nblocks + 1, 0);
  sub_rank_.assign(nblocks, 0);

  std::size_t running = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    block_rank_[b] = running;
    std::size_t in_block = 0;
    for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
      if (w > 0) sub_rank_[b] |= static_cast<std::uint64_t>(in_block)
                                 << (9 * (w - 1));
      in_block += static_cast<std::size_t>(
          std::popcount(word(b * kWordsPerBlock + w)));
    }
    running += in_block;
  }
  block_rank_[nblocks] = running;
  ones_ = running;

  // Sampled select hints: the block containing every kSelectSample-th
  // one (resp. zero). Found by scanning block ranks once.
  const std::size_t nzeros = nbits - ones_;
  select1_hint_.reserve(ones_ / kSelectSample + 1);
  select0_hint_.reserve(nzeros / kSelectSample + 1);
  {
    std::size_t b = 0;
    for (std::size_t k = 0; k < ones_; k += kSelectSample) {
      while (block_rank_[b + 1] <= k) ++b;
      select1_hint_.push_back(static_cast<std::uint32_t>(b));
    }
  }
  {
    std::size_t b = 0;
    const auto zeros_before = [&](std::size_t blk) {
      return blk * kBlockBits - block_rank_[blk];
    };
    for (std::size_t k = 0; k < nzeros; k += kSelectSample) {
      while (b + 1 < block_count() && zeros_before(b + 1) <= k) ++b;
      select0_hint_.push_back(static_cast<std::uint32_t>(b));
    }
  }
}

std::uint64_t RankSelect::word(std::size_t w) const noexcept {
  const auto& words = bits_.words();
  if (w >= words.size()) return 0;
  std::uint64_t v = words[w];
  // Mask stray bits past size() in the final partial word so popcounts
  // only ever see live bits.
  const std::size_t live = bits_.size() - 64 * w;
  if (live < 64) v &= (std::uint64_t{1} << live) - 1;
  return v;
}

std::size_t RankSelect::rank1(std::size_t i) const {
  if (i > bits_.size()) {
    throw std::out_of_range("RankSelect::rank1: position past end");
  }
  const std::size_t b = i / kBlockBits;
  const std::size_t w = (i / 64) % kWordsPerBlock;
  std::size_t r = (b < block_count() ? block_rank_[b] : ones_);
  if (b >= block_count()) return r;
  r += sub_rank(b, w);
  const std::size_t off = i % 64;
  if (off != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << off) - 1;
    r += static_cast<std::size_t>(
        std::popcount(word(b * kWordsPerBlock + w) & mask));
  }
  return r;
}

std::size_t RankSelect::rank0(std::size_t i) const { return i - rank1(i); }

std::size_t RankSelect::select1(std::size_t k) const {
  if (k >= ones_) {
    throw std::out_of_range("RankSelect::select1: rank past population");
  }
  // Start at the sampled block, advance while the next block still
  // begins at or below rank k, then resolve word and bit.
  std::size_t b = select1_hint_[k / kSelectSample];
  while (block_rank_[b + 1] <= k) ++b;
  std::size_t rem = k - block_rank_[b];
  std::size_t w = kWordsPerBlock - 1;
  while (w > 0 && sub_rank(b, w) > rem) --w;
  rem -= sub_rank(b, w);
  const std::size_t word_index = b * kWordsPerBlock + w;
  return 64 * word_index + word_select1(word(word_index), rem);
}

std::size_t RankSelect::select0(std::size_t k) const {
  if (k >= zeros()) {
    throw std::out_of_range("RankSelect::select0: rank past population");
  }
  const auto zeros_before = [&](std::size_t blk) {
    return blk * kBlockBits - block_rank_[blk];
  };
  std::size_t b = select0_hint_[k / kSelectSample];
  while (b + 1 < block_count() && zeros_before(b + 1) <= k) ++b;
  std::size_t rem = k - zeros_before(b);
  // Within-block zero subcounts derive from the one subcounts.
  std::size_t w = kWordsPerBlock - 1;
  const auto zero_sub = [&](std::size_t ww) { return 64 * ww - sub_rank(b, ww); };
  while (w > 0 && zero_sub(w) > rem) --w;
  rem -= zero_sub(w);
  const std::size_t word_index = b * kWordsPerBlock + w;
  // Live-bit masking: bits past size() read as zero in word(), but those
  // phantom zeros are never selectable because k < zeros() bounds us to
  // real positions... except in the final partial word, where ~word(i)
  // would expose them. Select on the complement restricted to live bits.
  std::uint64_t inverted = ~word(word_index);
  const std::size_t base = 64 * word_index;
  if (bits_.size() - base < 64) {
    inverted &= (std::uint64_t{1} << (bits_.size() - base)) - 1;
  }
  return base + word_select1(inverted, rem);
}

}  // namespace optrt::bitio
